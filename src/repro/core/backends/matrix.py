"""Vectorised secure triangle counting via secret-shared matrix products.

The faithful Algorithm 4 consumes one multiplication group per candidate
triple, which is cubic in the number of users.  This backend computes exactly
the same quantity,

``T = sum_{i<j<k} a_ij * a_ik * a_jk``,

with two opening rounds by rewriting it in matrix form.  Let ``C`` be the
strictly upper-triangular matrix with ``C[i, j] = a_ij`` for ``i < j`` (each
entry taken from user ``i``'s shared row, exactly the bits Algorithm 4
reads).  Then

``T = sum_{j<k} C[j, k] * (C^T C)[j, k]``

because ``(C^T C)[j, k] = sum_i C[i, j] C[i, k]`` and the strict upper
triangularity of ``C`` enforces ``i < j``.  The servers therefore

1. locally mask their shares down to the strict upper triangle,
2. compute shares of ``M = C^T C`` with one secret-shared matrix
   multiplication (a matrix Beaver triple, one opening of two ``n x n``
   matrices), and
3. compute shares of the element-wise product ``C ⊙ M`` over the upper
   triangle with one element-wise Beaver triple, then locally sum.

The three bits entering each product and the final count are identical to
the faithful protocol's; only the grouping of the openings differs, so the
backend is a drop-in replacement for `Count` in experiments at realistic
graph sizes.  Its weakness is memory: the monolithic matrix triple holds
several ``n x n`` arrays at once, which is what the ``blocked`` backend
(:mod:`repro.core.backends.blocked`) fixes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends.base import CountResult, TriangleCounterBackend, num_candidate_triples
from repro.core.backends.registry import register_backend
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_pair
from repro.crypto.views import ViewRecorder
from repro.parallel import TripleSignature, WorkerPool, resolve_workers
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState


@register_backend("matrix")
class MatrixTriangleCounter(TriangleCounterBackend):
    """Secure triangle counting with secret-shared matrix algebra.

    Parameters
    ----------
    ring:
        Secret-sharing ring.
    dealer:
        Beaver-triple dealer supplying the matrix and element-wise triples; a
        fresh one is created when not supplied.
    views:
        Optional view recorder for the security tests.
    workers:
        ``0`` keeps the serial path; ``>= 1`` computes the local ``n x n``
        matrix products (the dealer's ``Z = X @ Y`` and the servers' online
        combination) in parallel row strips.  Row striping is bit-identical
        to the serial product, so the transcript never depends on the worker
        count — for this backend it is identical to the legacy path too.
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore` memoising the
        monolithic matrix and element-wise triples (engine path only).
    """

    def __init__(
        self,
        ring: Ring = DEFAULT_RING,
        dealer: Optional[BeaverTripleDealer] = None,
        views: Optional[ViewRecorder] = None,
        workers: int = 0,
        triple_store=None,
        telemetry=None,
        authenticator=None,
    ) -> None:
        super().__init__(
            ring=ring, views=views, telemetry=telemetry, authenticator=authenticator
        )
        self._dealer = dealer if dealer is not None else BeaverTripleDealer(ring=ring)
        self._workers = int(workers)
        self._store = triple_store
        self._pool = WorkerPool(self._workers) if self._workers else None
        if self._pool is not None and self._dealer.matmul is None:
            # Parallelise the dealer's Z = X @ Y (bit-identical row strips).
            self._dealer.matmul = self._pool.ring_matmul(ring)

    @classmethod
    def from_config(
        cls,
        config,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        authenticator=None,
    ) -> "MatrixTriangleCounter":
        dealer = BeaverTripleDealer(ring=config.ring, seed=dealer_rng)
        return cls(
            ring=config.ring,
            dealer=dealer,
            views=views,
            workers=resolve_workers(config),
            triple_store=getattr(config, "triple_store", None),
            telemetry=resolve_telemetry(config),
            authenticator=authenticator,
        )

    def _dealt_triples(self, n: int):
        """The run's two triples: via the triple store when one is configured."""
        if self._store is None:
            return self._dealer.matrix_triple((n, n), (n, n)), self._dealer.vector_triple((n, n))
        signature = TripleSignature(
            statistic="triangles",
            backend="matrix",
            num_users=n,
            geometry=(("layout", "monolithic"),),
            ring_bits=self._ring.bits,
            dealer_key=self._dealer.fingerprint(),
        )
        stored = self._store.get(signature)
        if stored is not None:
            self._dealer.absorb_accounting(*stored["accounting"])
            return stored["matrix"], stored["elementwise"]
        before = self._dealer.accounting()
        matrix_triple = self._dealer.matrix_triple((n, n), (n, n))
        elementwise_triple = self._dealer.vector_triple((n, n))
        after = self._dealer.accounting()
        self._store.put(
            signature,
            {
                "matrix": matrix_triple,
                "elementwise": elementwise_triple,
                "accounting": (
                    after[0] - before[0],
                    after[1] - before[1],
                    max(after[2], before[2]),
                ),
            },
        )
        return matrix_triple, elementwise_triple

    def count_from_shares(self, share1: np.ndarray, share2: np.ndarray) -> CountResult:
        """Run the secure count given each server's share matrix."""
        ring = self._ring
        share1, share2 = self._validate_share_matrices(share1, share2)
        n = share1.shape[0]
        if n < 3:
            return CountResult(share1=0, share2=0, num_triples_processed=0, opening_rounds=0)

        tracer = self._telemetry.tracer
        num_triples = num_candidate_triples(n)
        with tracer.span(
            "backend", backend="matrix", num_users=n, candidates=num_triples
        ):
            # Step 1 — each server locally zeroes everything outside the
            # strict upper triangle.  The mask is public (it only depends on
            # indices), so this is a local linear operation on shares.
            upper_mask = np.triu(np.ones((n, n), dtype=ring.dtype), k=1)
            c1 = ring.mul(share1, upper_mask)
            c2 = ring.mul(share2, upper_mask)

            # Step 2 — shares of M = C^T @ C via one matrix Beaver triple.
            with tracer.span("offline"):
                matrix_triple, elementwise_triple = self._dealt_triples(n)
            with tracer.span("online", opening_rounds=2):
                matmul = self._pool.ring_matmul(ring) if self._pool is not None else None
                m1, m2 = secure_matrix_multiply(
                    (c1.T.copy(), c2.T.copy()), (c1, c2), matrix_triple,
                    ring=ring, views=self._views, matmul=matmul,
                    authenticator=self._authenticator,
                )

                # Step 3 — shares of C ⊙ M over the upper triangle via one
                # element-wise Beaver triple, then a local sum.
                prod1, prod2 = secure_multiply_pair(
                    (c1, c2), (ring.mul(m1, upper_mask), ring.mul(m2, upper_mask)),
                    elementwise_triple, ring=ring, views=self._views,
                    authenticator=self._authenticator,
                )
                total1 = ring.sum(prod1)
                total2 = ring.sum(prod2)
        return CountResult(
            share1=total1,
            share2=total2,
            num_triples_processed=num_triples,
            opening_rounds=2,
        )
