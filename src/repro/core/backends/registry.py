"""Name-based registry of secure counting backends.

The orchestrator never constructs a concrete counter itself; it asks this
registry to build whichever backend the configuration names.  Built-in
backends self-register at import time (importing :mod:`repro.core.backends`
is enough); third-party code registers its own with the same decorator::

    from repro.core.backends import TriangleCounterBackend, register_backend

    @register_backend("sparse")
    class SparseTriangleCounter(TriangleCounterBackend):
        @classmethod
        def from_config(cls, config, dealer_rng=None, views=None):
            return cls(ring=config.ring, views=views)
        ...

    CargoConfig(counting_backend="sparse")  # now resolves

A registration can be either a :class:`TriangleCounterBackend` subclass
(built via its ``from_config`` classmethod) or a plain factory callable with
the signature ``factory(config, dealer_rng=None, views=None)``; the latter
lets one class serve several named execution modes (e.g. ``faithful`` and
``batched``).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Union

from repro.core.backends.base import TriangleCounterBackend
from repro.crypto.views import ViewRecorder
from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState

#: A registered entry: a backend class or a ``(config, dealer_rng, views)`` factory.
BackendFactory = Callable[..., TriangleCounterBackend]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str) -> Callable[[BackendFactory], BackendFactory]:
    """Class/function decorator registering a counting backend under *name*.

    The decorated object is returned unchanged.  Registering a name twice is
    an error (it would silently shadow an existing execution strategy).
    """
    key = str(name).lower()
    if not key:
        raise ConfigurationError("backend name must be a non-empty string")

    def decorator(factory: BackendFactory) -> BackendFactory:
        if key in _REGISTRY:
            raise ConfigurationError(f"counting backend {key!r} is already registered")
        if isinstance(factory, type) and not issubclass(factory, TriangleCounterBackend):
            raise ConfigurationError(
                f"backend class {factory.__name__} must subclass TriangleCounterBackend"
            )
        _REGISTRY[key] = factory
        return factory

    return decorator


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests of the registry itself)."""
    _REGISTRY.pop(resolve_backend_name(name), None)


def resolve_backend_name(name: Union[str, enum.Enum]) -> str:
    """Normalise an enum member or string to the registry's lower-case key."""
    if isinstance(name, enum.Enum):
        name = name.value
    return str(name).lower()


def backend_registered(name: Union[str, enum.Enum]) -> bool:
    """Whether *name* resolves to a registered backend."""
    return resolve_backend_name(name) in _REGISTRY


def available_backends() -> List[str]:
    """Registered backend names, sorted for stable presentation."""
    return sorted(_REGISTRY)


def get_backend_factory(name: Union[str, enum.Enum]) -> BackendFactory:
    """Look up the factory registered under *name*."""
    key = resolve_backend_name(name)
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown counting backend {key!r}; registered: {', '.join(available_backends())}"
        )
    return _REGISTRY[key]


def create_backend(
    name: Union[str, enum.Enum],
    config,
    dealer_rng: RandomState = None,
    views: Optional[ViewRecorder] = None,
    authenticator=None,
) -> TriangleCounterBackend:
    """Instantiate the backend registered under *name* for *config*.

    *name* may be a :class:`~repro.core.config.CountingBackend` member or any
    registered string; *config* is passed through to the backend's factory
    (duck-typed, see :meth:`TriangleCounterBackend.from_config`).

    *authenticator* is forwarded only when the factory's signature accepts
    it, so third-party backends registered before the MAC layer existed keep
    working unauthenticated — but asking such a backend to authenticate is a
    configuration error, not a silent downgrade.
    """
    factory = get_backend_factory(name)
    builder = factory.from_config if isinstance(factory, type) else factory
    kwargs = {"dealer_rng": dealer_rng, "views": views}
    if authenticator is not None:
        import inspect

        parameters = inspect.signature(builder).parameters
        accepts = "authenticator" in parameters or any(
            parameter.kind is inspect.Parameter.VAR_KEYWORD
            for parameter in parameters.values()
        )
        if not accepts:
            raise ConfigurationError(
                f"counting backend {resolve_backend_name(name)!r} does not "
                "support authenticated openings (its factory takes no "
                "'authenticator' argument); run it with authenticate=False"
            )
        kwargs["authenticator"] = authenticator
    return builder(config, **kwargs)
