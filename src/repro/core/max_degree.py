"""Algorithm 2 — `Max`: private estimation of the maximum degree.

Each user adds ``Lap(1/ε1)`` to her own degree (the Edge-LDP sensitivity of a
single degree is 1 because the two directions of an edge are distinct
secrets) and sends the noisy degree to one of the servers.  The server
returns the maximum of the noisy degrees as ``d'_max``, which the projection
step then uses as the degree bound.

The noisy degrees themselves (``D'``) are also returned because Algorithm 3
uses the *neighbours'* noisy degrees when computing degree similarities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.crypto.protocol import TwoServerRuntime
from repro.dp.mechanisms import LaplaceMechanism
from repro.exceptions import PrivacyError
from repro.utils.rng import RandomState, spawn_state_matrix, uniforms_from_states


@dataclass(frozen=True)
class MaxDegreeResult:
    """Output of the `Max` algorithm.

    Attributes
    ----------
    noisy_degrees:
        The noisy degree set ``D' = {d'_1, ..., d'_n}`` (floats).
    noisy_max_degree:
        ``d'_max = max(D')`` — the projection parameter and the sensitivity
        used by `Perturb`.  Clamped below at 1.0 so downstream scale
        parameters stay positive even on degenerate graphs.
    epsilon1:
        The budget spent by this invocation.
    """

    noisy_degrees: List[float]
    noisy_max_degree: float
    epsilon1: float


class MaxDegreeEstimator:
    """Runs the `Max` protocol for a collection of users.

    Parameters
    ----------
    epsilon1:
        The Edge-LDP budget each user spends on her noisy degree.
    clamp_to_n:
        When ``True`` (default) the noisy maximum degree is clamped to the
        number of users, since no degree can exceed ``n - 1``; this only
        matters at very small ε1 where the Laplace tail can exceed ``n``.
    """

    def __init__(self, epsilon1: float, clamp_to_n: bool = True) -> None:
        if epsilon1 <= 0:
            raise PrivacyError(f"epsilon1 must be positive, got {epsilon1}")
        self._epsilon1 = float(epsilon1)
        self._clamp_to_n = clamp_to_n
        self._mechanism = LaplaceMechanism(epsilon=self._epsilon1, sensitivity=1.0)

    @property
    def epsilon1(self) -> float:
        """The Edge-LDP budget spent per user."""
        return self._epsilon1

    def run(
        self,
        degrees: Sequence[int],
        rng: RandomState = None,
        runtime: Optional[TwoServerRuntime] = None,
    ) -> MaxDegreeResult:
        """Execute `Max` over the true degree set ``D``.

        Parameters
        ----------
        degrees:
            The users' true degrees ``d_1 .. d_n``.
        rng:
            Seed or generator; each user derives an independent substream.
        runtime:
            Optional communication runtime.  When given, each user's noisy
            degree is sent to server ``S1`` and the resulting ``d'_max`` is
            broadcast back, so the messages appear in the communication
            ledger exactly as the paper's protocol describes.
        """
        num_users = len(degrees)
        if num_users == 0:
            return MaxDegreeResult(noisy_degrees=[], noisy_max_degree=1.0, epsilon1=self._epsilon1)
        # One stacked Laplace draw for every user: each user's uniform comes
        # from her own spawned substream (the same children spawn_rngs would
        # hand out), so per-user determinism is preserved while the sampling
        # itself is a single inverse-CDF transform.
        states = spawn_state_matrix(rng, num_users, words=1)
        noise = self._mechanism.noise_from_uniforms(uniforms_from_states(states[:, 0]))
        noisy_array = np.asarray(degrees, dtype=np.float64) + noise
        noisy_degrees = [float(value) for value in noisy_array]
        if runtime is not None:
            # The n per-user uploads ride in one array-payload ledger record
            # (n messages, identical byte total).
            runtime.users_to_server(1, "noisy_degree", noisy_array)
        noisy_max = float(np.max(noisy_array))
        if self._clamp_to_n:
            noisy_max = min(noisy_max, float(num_users - 1) if num_users > 1 else 1.0)
        noisy_max = max(noisy_max, 1.0)
        if runtime is not None:
            runtime.broadcast_to_users(1, "noisy_max_degree", noisy_max)
        return MaxDegreeResult(
            noisy_degrees=noisy_degrees,
            noisy_max_degree=noisy_max,
            epsilon1=self._epsilon1,
        )

    def expected_error(self, num_users: int) -> float:
        """Analytic upper bound on ``E[(d'_max - d_max)^2]`` contribution per user.

        The maximum of ``n`` Laplace(1/ε1) variables concentrates around
        ``ln(n)/ε1``; this helper reports the variance of a single noisy
        degree, ``2/ε1²``, which is the quantity the paper's Table V
        discussion uses to argue ``d'_max ≈ d_max``.
        """
        if num_users <= 0:
            raise PrivacyError(f"num_users must be positive, got {num_users}")
        return 2.0 / (self._epsilon1**2)
