"""Result object returned by a full CARGO execution."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class CargoResult:
    """Everything an experiment needs from one CARGO run.

    Attributes
    ----------
    noisy_triangle_count:
        The protocol output ``T'`` — the differentially private estimate of
        the triangle count.
    true_triangle_count:
        Ground-truth count of the *original* graph (computed in the clear for
        evaluation only; a deployment would not have it).
    projected_triangle_count:
        The count the secure protocol actually protects — after projection.
        The difference to ``true_triangle_count`` is the projection loss.
    noisy_max_degree:
        The ``d'_max`` estimate from `Max` that parameterised projection and
        perturbation.
    epsilon1 / epsilon2:
        The budgets actually spent on `Max` and `Perturb`.
    edges_removed:
        Number of adjacency bits cleared by projection.
    timings:
        Per-phase wall-clock seconds (``max``, ``project``, ``share``,
        ``count``, ``perturb``, ``total``).
    communication:
        Per-channel message/byte counts when communication tracking was
        enabled (empty otherwise).
    communication_phases:
        Per-phase message/byte counts (keyed by the message tags recorded at
        send time, e.g. ``adjacency_share``, ``noise_share``); empty when
        tracking was disabled.
    backend:
        Name of the secure counting backend that produced the count.
    statistic:
        Registered name of the released subgraph statistic.  The
        ``*_triangle_count`` field names are kept for compatibility with the
        original triangle-only pipeline; for other statistics they hold that
        statistic's counts (use the :attr:`noisy_count` / :attr:`true_count`
        / :attr:`projected_count` aliases in statistic-agnostic code).
    telemetry:
        Per-phase summary block (rows plus a rendered table, opening-round
        and triple-store stats) when the run carried a
        :class:`~repro.telemetry.Telemetry` bundle; ``None`` otherwise.
    """

    noisy_triangle_count: float
    true_triangle_count: int
    projected_triangle_count: int
    noisy_max_degree: float
    epsilon1: float
    epsilon2: float
    edges_removed: int
    timings: Dict[str, float] = field(default_factory=dict)
    communication: Dict[str, Dict[str, int]] = field(default_factory=dict)
    communication_phases: Dict[str, Dict[str, int]] = field(default_factory=dict)
    backend: str = "matrix"
    statistic: str = "triangles"
    telemetry: Optional[Dict] = None

    @property
    def noisy_count(self) -> float:
        """Statistic-agnostic alias for the private estimate."""
        return self.noisy_triangle_count

    @property
    def true_count(self) -> int:
        """Statistic-agnostic alias for the evaluation-only ground truth."""
        return self.true_triangle_count

    @property
    def projected_count(self) -> int:
        """Statistic-agnostic alias for the post-projection count."""
        return self.projected_triangle_count

    @property
    def epsilon(self) -> float:
        """Total privacy budget ``ε = ε1 + ε2`` consumed by the run."""
        return self.epsilon1 + self.epsilon2

    @property
    def l2_loss(self) -> float:
        """Squared error of the estimate against the true count."""
        return (self.true_triangle_count - self.noisy_triangle_count) ** 2

    @property
    def relative_error(self) -> float:
        """Relative error ``|T - T'| / T`` (infinite when ``T == 0``)."""
        if self.true_triangle_count == 0:
            return float("inf")
        return abs(self.true_triangle_count - self.noisy_triangle_count) / self.true_triangle_count

    @property
    def projection_loss(self) -> int:
        """Triangles lost to projection (before any noise)."""
        return self.true_triangle_count - self.projected_triangle_count
