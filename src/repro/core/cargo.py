"""Algorithm 1 — the end-to-end CARGO protocol, generalised over statistics.

:class:`Cargo` wires the phases together:

1. `Max` (Algorithm 2) privately estimates the maximum degree ``d'_max``
   spending ε1;
2. `Project` (Algorithm 3) bounds each user's degree by ``d'_max`` using the
   similarity-based rule;
3. `Count` (Algorithm 4, or one of its accelerated equivalents) computes
   secret shares of the projected count of the configured
   :class:`~repro.stats.SubgraphStatistic` — triangles by default, but any
   registered statistic (``kstars``, ``4cycles``, …) runs through the same
   pipeline;
4. `Perturb` (Algorithm 5) adds distributed Laplace noise inside the shared
   domain, calibrated to the statistic's post-projection sensitivity, and
   reconstructs the noisy count ``T'``.

The returned :class:`~repro.core.result.CargoResult` bundles the estimate
with the evaluation-only ground truth, phase timings, and (optionally) the
communication ledger, which is everything the paper's figures need.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CargoConfig
from repro.core.max_degree import MaxDegreeEstimator
from repro.core.perturbation import DistributedPerturbation
from repro.core.projection import SimilarityProjection
from repro.core.result import CargoResult
from repro.crypto.mac import resolve_authenticator
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.views import ViewRecorder
from repro.exceptions import CheaterDetectedError, ConfigurationError
from repro.graph.graph import Graph
from repro.stats import create_statistic
from repro.resilience import resolve_resilience
from repro.telemetry import Tracer, build_result_telemetry, resolve_telemetry
from repro.utils.rng import derive_rng, spawn_rngs


def resolve_sparse_mode(config, statistic) -> bool:
    """Decide whether a run uses the degree-local (sparse) execution path.

    ``"auto"`` engages it exactly when the statistic declares a degree
    kernel; ``"force"`` additionally raises on statistics that cannot run
    sparse, so misconfiguration fails loudly instead of silently allocating
    ``n x n`` rows.
    """
    mode = getattr(config, "sparse", "auto")
    if mode == "never":
        return False
    if not statistic.supports_degree_kernel:
        if mode == "force":
            raise ConfigurationError(
                f"sparse='force' but statistic {statistic.name!r} has no "
                "degree-local kernel; only degree statistics (kstars, wedges) "
                "can run sparse"
            )
        return False
    return True


class Cargo:
    """The CARGO system: crypto-assisted DP subgraph-statistic release.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.CargoConfig`; a default configuration
        (ε = 2, matrix backend, triangle statistic) is used when omitted.

    Examples
    --------
    >>> from repro.graph import load_dataset
    >>> from repro.core import Cargo, CargoConfig
    >>> graph = load_dataset("facebook", num_nodes=300)
    >>> result = Cargo(CargoConfig(epsilon=2.0, seed=7)).run(graph)
    >>> result.relative_error < 1.0
    True
    >>> wedges = Cargo(CargoConfig(epsilon=2.0, seed=7, statistic="wedges")).run(graph)
    >>> wedges.statistic
    'wedges'
    """

    def __init__(self, config: Optional[CargoConfig] = None) -> None:
        self._config = config if config is not None else CargoConfig()
        self.views: Optional[ViewRecorder] = (
            ViewRecorder() if self._config.record_views else None
        )

    @property
    def config(self) -> CargoConfig:
        """The configuration this instance runs with."""
        return self._config

    def run(self, graph: Graph) -> CargoResult:
        """Execute the full protocol on *graph* and return the result."""
        config = self._config
        if getattr(config, "distributed", False):
            # The process-separated runtime replicates this orchestration
            # across four OS processes; results are bit-identical.
            from repro.runtime.driver import run_distributed

            return run_distributed(graph, config, views=self.views)
        budget = config.resolved_budget()
        statistic = create_statistic(config.statistic, config)
        telemetry = resolve_telemetry(config)
        resilience = resolve_resilience(config)
        if getattr(config, "triple_store", None) is not None and resilience.enabled:
            config.triple_store.configure_resilience(
                retry=resilience.retry,
                strict_integrity=resilience.strict_integrity,
                metrics=telemetry.metrics if telemetry.enabled else None,
            )
        # Phase timings always come from a span tree; without a telemetry
        # bundle the run uses a private tracer whose only spans are the
        # legacy phases, so ``result.timings`` keeps its historical keys.
        tracer = telemetry.tracer if telemetry.enabled else Tracer()
        master_rng = derive_rng(config.seed)
        # Independent sub-streams: users' degree noise, users' share masks,
        # users' distributed noise, and the offline dealer.
        max_rng, share_rng, noise_rng, dealer_rng = spawn_rngs(master_rng, 4)
        if config.offline_seed is not None:
            # Pinned offline randomness: identical dealt material across
            # runs, which is what lets a TripleStore serve sweep cells and
            # reruns warm.  Evaluation-only — see docs/performance.md.
            dealer_rng = derive_rng(config.offline_seed)

        runtime: Optional[TwoServerRuntime] = (
            TwoServerRuntime(graph.num_nodes) if config.track_communication else None
        )
        # One authenticator per run: every server-to-server opening (Beaver
        # / multiplication-group / matrix openings inside `Count`, plus the
        # final release reconstruction in `Perturb`) goes through its batched
        # MAC check, so a tampering server aborts the run instead of biasing
        # the released count.
        authenticator = resolve_authenticator(config)

        try:
            return self._run_protocol(
                graph,
                config=config,
                budget=budget,
                statistic=statistic,
                telemetry=telemetry,
                tracer=tracer,
                runtime=runtime,
                authenticator=authenticator,
                rngs=(max_rng, share_rng, noise_rng, dealer_rng),
            )
        except CheaterDetectedError as error:
            record_cheater_event(
                config, telemetry, backend=config.backend_name, error=error
            )
            raise

    def _run_protocol(
        self,
        graph: Graph,
        *,
        config,
        budget,
        statistic,
        telemetry,
        tracer,
        runtime,
        authenticator,
        rngs,
    ) -> CargoResult:
        max_rng, share_rng, noise_rng, dealer_rng = rngs
        with tracer.span(
            "total", backend=config.backend_name, statistic=config.statistic
        ) as run_span:
            # ---------------------------------------------------------- #
            # Step 1a — Max: private estimate of the maximum degree.
            # ---------------------------------------------------------- #
            with tracer.span("max"):
                estimator = MaxDegreeEstimator(budget.epsilon1)
                max_result = estimator.run(graph.degrees(), rng=max_rng, runtime=runtime)

            # ---------------------------------------------------------- #
            # Step 1b — Project: similarity-based degree bounding.  Degree
            # statistics only need the row sums the projection would leave
            # behind, so the sparse path projects the degree vector alone —
            # O(n) memory, bit-identical outcome.
            # ---------------------------------------------------------- #
            use_sparse = resolve_sparse_mode(config, statistic)
            with tracer.span("project", sparse=use_sparse):
                projection = SimilarityProjection(max_result.noisy_max_degree)
                if use_sparse:
                    projection_result = projection.project_degrees(
                        graph.degree_vector(copy=False)
                    )
                    projected_count = statistic.degree_count(
                        projection_result.projected_degrees
                    )
                else:
                    projection_result = projection.project_graph(
                        graph, noisy_degrees=max_result.noisy_degrees
                    )
                    projected_count = statistic.projected_count(
                        projection_result.projected_rows
                    )

            # ---------------------------------------------------------- #
            # Step 2 — Count: the statistic's secure kernel on shares.
            # ---------------------------------------------------------- #
            with tracer.span("count", backend=config.backend_name):
                # The statistic owns its secure-share formulation (triangles
                # delegate to whichever counting backend the configuration
                # names); the orchestrator only knows the registered name.
                if use_sparse:
                    count_result = statistic.secure_count_from_degrees(
                        projection_result.projected_degrees,
                        config=config,
                        share_rng=share_rng,
                        dealer_rng=dealer_rng,
                        views=self.views,
                        runtime=runtime,
                        authenticator=authenticator,
                    )
                else:
                    count_result = statistic.secure_count(
                        projection_result.projected_rows,
                        config=config,
                        share_rng=share_rng,
                        dealer_rng=dealer_rng,
                        views=self.views,
                        runtime=runtime,
                        authenticator=authenticator,
                    )

            # ---------------------------------------------------------- #
            # Step 3 — Perturb: distributed noise inside the shared domain,
            # calibrated to the statistic's post-projection sensitivity (in
            # units of the raw secure output — `finalise` divides the
            # release scale back out afterwards, which is post-processing).
            # ---------------------------------------------------------- #
            with tracer.span("perturb"):
                perturbation = DistributedPerturbation(
                    epsilon2=budget.epsilon2,
                    sensitivity=statistic.secure_output_sensitivity(
                        max_result.noisy_max_degree
                    ),
                    num_users=max(graph.num_nodes, 1),
                    ring=config.ring,
                    fixed_point_bits=config.fixed_point_bits,
                )
                perturb_result = perturbation.run(
                    count_result, rng=noise_rng, runtime=runtime,
                    authenticator=authenticator,
                )

        true_count = statistic.plain_count(graph)
        noisy_count = statistic.finalise(perturb_result.noisy_count)
        timings = run_span.timings()
        communication_phases = (
            runtime.ledger.phase_summary() if runtime is not None else {}
        )
        result_telemetry = feed_run_telemetry(
            config,
            telemetry,
            backend=config.backend_name,
            timings=timings,
            communication_phases=communication_phases,
            count_result=count_result,
            budget=budget,
            noisy_count=noisy_count,
            true_count=true_count,
            projected_count=projected_count,
            noisy_max_degree=max_result.noisy_max_degree,
            authenticator=authenticator,
        )
        return CargoResult(
            noisy_triangle_count=noisy_count,
            true_triangle_count=true_count,
            projected_triangle_count=projected_count,
            noisy_max_degree=max_result.noisy_max_degree,
            epsilon1=budget.epsilon1,
            epsilon2=budget.epsilon2,
            edges_removed=projection_result.edges_removed,
            timings=timings,
            communication=runtime.ledger.summary() if runtime is not None else {},
            communication_phases=communication_phases,
            backend=config.backend_name,
            statistic=config.statistic,
            telemetry=result_telemetry,
        )


def feed_run_telemetry(
    config,
    telemetry,
    *,
    backend,
    timings,
    communication_phases,
    count_result,
    budget,
    noisy_count,
    true_count,
    projected_count,
    noisy_max_degree,
    authenticator=None,
    transport=None,
):
    """Post-run metric feeding + the release record for the manifest.

    Shared by the Edge-DP and Node-DP orchestrators.  Runs strictly *after*
    the protocol finished, so instrumentation can never perturb the
    transcript; returns the ``CargoResult.telemetry`` block (``None`` when
    telemetry is disabled).  *transport* is the distributed runtime's
    physical byte summary (frames, payload vs framing overhead, per-process
    wall time); in-process runs have no transport and pass ``None``.
    """
    if not telemetry.enabled:
        return None
    metrics = telemetry.metrics
    labels = {"backend": backend, "statistic": config.statistic}
    metrics.increment("runs", **labels)
    mac_block = None
    if authenticator is not None and getattr(authenticator, "enabled", False):
        mac_block = {
            "rounds_checked": int(authenticator.rounds_checked),
            "values_checked": int(authenticator.values_checked),
        }
        metrics.increment("mac_rounds_checked", mac_block["rounds_checked"], **labels)
        metrics.increment("mac_values_checked", mac_block["values_checked"], **labels)
    for phase, stats in communication_phases.items():
        metrics.increment("comm_bytes", stats["bytes"], phase=phase)
        metrics.increment("comm_messages", stats["messages"], phase=phase)
    metrics.increment("opening_rounds", count_result.opening_rounds, **labels)
    metrics.increment(
        "candidates_processed", count_result.num_triples_processed, **labels
    )
    metrics.increment("epsilon_spent", budget.epsilon1, mechanism="max")
    metrics.increment("epsilon_spent", budget.epsilon2, mechanism="perturb")
    store = getattr(config, "triple_store", None)
    store_stats = store.stats() if store is not None else None
    if store_stats is not None:
        for key, value in store_stats.items():
            metrics.gauge_set(f"triple_store_{key}", value)
    release = {
        "kind": "cargo",
        "statistic": config.statistic,
        "backend": backend,
        "seed": config.seed,
        "noisy_count": noisy_count,
        "true_count": true_count,
        "projected_count": projected_count,
        "noisy_max_degree": noisy_max_degree,
        "epsilon": {"max": budget.epsilon1, "perturb": budget.epsilon2},
        "opening_rounds": count_result.opening_rounds,
        "candidates": count_result.num_triples_processed,
        "timings": timings,
        "communication_phases": communication_phases,
    }
    if mac_block is not None:
        release["mac"] = mac_block
    if transport is not None:
        release["transport"] = transport
    telemetry.record_release(release)
    result_block = build_result_telemetry(
        timings,
        communication_phases,
        opening_rounds=count_result.opening_rounds,
        candidates=count_result.num_triples_processed,
        triple_store_stats=store_stats,
    )
    if transport is not None and result_block is not None:
        result_block["transport"] = transport
    return result_block


def record_cheater_event(config, telemetry, *, backend, error) -> None:
    """Record a failed MAC check in the run's telemetry before re-raising.

    A detected cheat aborts the release, so the normal ``cargo`` record never
    happens; this leaves an auditable ``cheater_detected`` record (which
    round and label failed, never a count) in the manifest instead.  Shared
    by the Edge-DP and Node-DP orchestrators; a no-op when telemetry is
    disabled.
    """
    if not telemetry.enabled:
        return
    labels = {"backend": backend, "statistic": config.statistic}
    telemetry.metrics.increment("cheater_detected", **labels)
    telemetry.record_release(
        {
            "kind": "cheater_detected",
            "statistic": config.statistic,
            "backend": backend,
            "seed": config.seed,
            "round_index": int(getattr(error, "round_index", -1)),
            "label": str(getattr(error, "label", "")),
            "message": str(error),
        }
    )
