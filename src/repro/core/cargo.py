"""Algorithm 1 — the end-to-end CARGO protocol.

:class:`Cargo` wires the three phases together:

1. `Max` (Algorithm 2) privately estimates the maximum degree ``d'_max``
   spending ε1;
2. `Project` (Algorithm 3) bounds each user's degree by ``d'_max`` using the
   similarity-based rule;
3. `Count` (Algorithm 4, or one of its accelerated equivalents) computes
   secret shares of the projected triangle count;
4. `Perturb` (Algorithm 5) adds distributed Laplace noise inside the shared
   domain and reconstructs the noisy count ``T'``.

The returned :class:`~repro.core.result.CargoResult` bundles the estimate
with the evaluation-only ground truth, phase timings, and (optionally) the
communication ledger, which is everything the paper's figures need.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends import create_backend, share_adjacency_rows
from repro.core.config import CargoConfig
from repro.core.max_degree import MaxDegreeEstimator
from repro.core.perturbation import DistributedPerturbation
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.core.result import CargoResult
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.views import ViewRecorder
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.utils.rng import derive_rng, spawn_rngs
from repro.utils.timer import TimerRegistry


class Cargo:
    """The CARGO system: crypto-assisted DP triangle counting.

    Parameters
    ----------
    config:
        A :class:`~repro.core.config.CargoConfig`; a default configuration
        (ε = 2, matrix backend) is used when omitted.

    Examples
    --------
    >>> from repro.graph import load_dataset
    >>> from repro.core import Cargo, CargoConfig
    >>> graph = load_dataset("facebook", num_nodes=300)
    >>> result = Cargo(CargoConfig(epsilon=2.0, seed=7)).run(graph)
    >>> result.relative_error < 1.0
    True
    """

    def __init__(self, config: Optional[CargoConfig] = None) -> None:
        self._config = config if config is not None else CargoConfig()
        self.views: Optional[ViewRecorder] = (
            ViewRecorder() if self._config.record_views else None
        )

    @property
    def config(self) -> CargoConfig:
        """The configuration this instance runs with."""
        return self._config

    def run(self, graph: Graph) -> CargoResult:
        """Execute the full protocol on *graph* and return the result."""
        config = self._config
        budget = config.resolved_budget()
        timers = TimerRegistry()
        master_rng = derive_rng(config.seed)
        # Independent sub-streams: users' degree noise, users' share masks,
        # users' distributed noise, and the offline dealer.
        max_rng, share_rng, noise_rng, dealer_rng = spawn_rngs(master_rng, 4)

        runtime: Optional[TwoServerRuntime] = (
            TwoServerRuntime(graph.num_nodes) if config.track_communication else None
        )

        with timers.measure("total"):
            # ---------------------------------------------------------- #
            # Step 1a — Max: private estimate of the maximum degree.
            # ---------------------------------------------------------- #
            with timers.measure("max"):
                estimator = MaxDegreeEstimator(budget.epsilon1)
                max_result = estimator.run(graph.degrees(), rng=max_rng, runtime=runtime)

            # ---------------------------------------------------------- #
            # Step 1b — Project: similarity-based degree bounding.
            # ---------------------------------------------------------- #
            with timers.measure("project"):
                projection = SimilarityProjection(max_result.noisy_max_degree)
                projection_result = projection.project_graph(
                    graph, noisy_degrees=max_result.noisy_degrees
                )
                projected_count = projected_triangle_count(projection_result.projected_rows)

            # ---------------------------------------------------------- #
            # Step 2 — Count: secure triangle counting on secret shares.
            # ---------------------------------------------------------- #
            with timers.measure("count"):
                # Backends self-register with the registry; the orchestrator
                # only knows the configured name.
                counter = create_backend(
                    config.counting_backend,
                    config=config,
                    dealer_rng=dealer_rng,
                    views=self.views,
                )
                if runtime is not None:
                    # Each user uploads one share of her projected bit vector
                    # to each server; routing the upload through the runtime
                    # makes the dominant communication cost visible in the
                    # ledger (the openings between servers are internal to
                    # the counter backends).  The n per-server uploads ride
                    # in one array-payload record each — n messages with the
                    # identical byte total.
                    share1, share2 = share_adjacency_rows(
                        projection_result.projected_rows, ring=config.ring, rng=share_rng
                    )
                    runtime.users_to_server(1, "adjacency_share", share1)
                    runtime.users_to_server(2, "adjacency_share", share2)
                    count_result = counter.count_from_shares(share1, share2)
                else:
                    count_result = counter.count(
                        projection_result.projected_rows, rng=share_rng
                    )

            # ---------------------------------------------------------- #
            # Step 3 — Perturb: distributed noise inside the shared domain.
            # ---------------------------------------------------------- #
            with timers.measure("perturb"):
                perturbation = DistributedPerturbation(
                    epsilon2=budget.epsilon2,
                    sensitivity=max_result.noisy_max_degree,
                    num_users=max(graph.num_nodes, 1),
                    ring=config.ring,
                    fixed_point_bits=config.fixed_point_bits,
                )
                perturb_result = perturbation.run(
                    count_result, rng=noise_rng, runtime=runtime
                )

        true_count = count_triangles(graph)
        return CargoResult(
            noisy_triangle_count=perturb_result.noisy_count,
            true_triangle_count=true_count,
            projected_triangle_count=projected_count,
            noisy_max_degree=max_result.noisy_max_degree,
            epsilon1=budget.epsilon1,
            epsilon2=budget.epsilon2,
            edges_removed=projection_result.edges_removed,
            timings=timers.as_dict(),
            communication=runtime.ledger.summary() if runtime is not None else {},
            communication_phases=(
                runtime.ledger.phase_summary() if runtime is not None else {}
            ),
            backend=config.backend_name,
        )
