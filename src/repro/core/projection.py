"""Algorithm 3 — `Project`: similarity-based local graph projection.

Each user whose degree exceeds the (noisy) maximum degree bound keeps only
her ``d'_max`` most *degree-similar* neighbours and drops the rest.  The
intuition (Observation 1, triangle homogeneity) is that the three nodes of a
triangle tend to have similar degrees, so deleting the least-similar
neighbours destroys the fewest triangles — in contrast to the random edge
deletion used by prior local projections.

Projection is a purely local operation on each user's adjacent bit vector, so
the resulting "projected adjacency matrix" need not be symmetric: user ``i``
may drop the edge to ``j`` while ``j`` keeps the edge to ``i``.  The secure
counting step (Algorithm 4) consumes exactly one bit per (ordered) position —
``a_ij`` and ``a_ik`` from user ``i``'s row and ``a_jk`` from user ``j``'s
row, for ``i < j < k`` — so :func:`projected_triangle_count` evaluates the
same expression in the clear for ground truth and projection-loss analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph


def degree_similarity(own_degree: float, neighbor_degree: float) -> float:
    """Degree similarity ``DS(d1, d2) = |d1 - d2| / d1`` (Definition 5).

    Lower values mean more similar degrees.  ``own_degree`` must be positive;
    a user with degree zero has no edges to project anyway.

    Examples
    --------
    >>> degree_similarity(10, 8)
    0.2
    >>> degree_similarity(10, 10)
    0.0
    """
    if own_degree <= 0:
        raise ConfigurationError(f"own_degree must be positive, got {own_degree}")
    return abs(own_degree - neighbor_degree) / own_degree


@dataclass(frozen=True)
class ProjectionResult:
    """Output of the `Project` algorithm.

    Attributes
    ----------
    projected_rows:
        One 0/1 numpy row per user — the projected adjacent bit vectors
        ``Â_1 .. Â_n``.  Row ``i`` may differ from column ``i`` of another
        row because projection is local.
    degree_bound:
        The bound ``d'_max`` that was enforced.
    edges_removed:
        Total number of bits cleared across all rows.
    users_projected:
        Number of users whose degree exceeded the bound.
    """

    projected_rows: np.ndarray
    degree_bound: float
    edges_removed: int
    users_projected: int

    def row(self, user_index: int) -> np.ndarray:
        """The projected adjacent bit vector of one user."""
        return self.projected_rows[user_index]


@dataclass(frozen=True)
class DegreeProjectionResult:
    """Output of the degree-only `Project` shortcut (sparse path).

    Attributes
    ----------
    projected_degrees:
        One int64 entry per user — the row sum each user's projected bit
        vector *would* have: her true degree when it is at most the bound,
        ``floor(d'_max)`` otherwise.
    degree_bound:
        The bound ``d'_max`` that was enforced.
    edges_removed:
        Total bits the full projection would have cleared.
    users_projected:
        Number of users whose degree exceeded the bound.
    """

    projected_degrees: np.ndarray
    degree_bound: float
    edges_removed: int
    users_projected: int


class SimilarityProjection:
    """Similarity-based local projection (the paper's `Project`).

    Parameters
    ----------
    degree_bound:
        The noisy maximum degree ``d'_max`` produced by `Max`.  Users whose
        true degree is at most the bound keep their bit vector unchanged.
    """

    def __init__(self, degree_bound: float) -> None:
        if degree_bound < 0:
            raise ConfigurationError(f"degree_bound must be non-negative, got {degree_bound}")
        self._degree_bound = float(degree_bound)

    @property
    def degree_bound(self) -> float:
        """The enforced degree bound ``d'_max``."""
        return self._degree_bound

    def project_user(
        self,
        bit_vector: np.ndarray,
        own_degree: int,
        noisy_degrees: Sequence[float],
    ) -> np.ndarray:
        """Project a single user's adjacent bit vector.

        Implements lines 2-15 of Algorithm 3: when the user's true degree
        exceeds the bound, compute the degree similarity to every neighbour
        (using the *noisy* neighbour degrees published by `Max`), keep the
        ``floor(d'_max)`` most similar neighbours, and clear the rest.
        """
        bits = np.asarray(bit_vector, dtype=np.int64)
        keep_budget = int(self._degree_bound)
        if own_degree <= self._degree_bound:
            return bits.copy()
        neighbors = np.nonzero(bits)[0]
        if len(neighbors) <= keep_budget:
            return bits.copy()
        similarities = np.array(
            [degree_similarity(own_degree, noisy_degrees[j]) for j in neighbors]
        )
        # Keep the keep_budget smallest similarity values; ties are broken by
        # neighbour id so the projection is deterministic.
        order = np.lexsort((neighbors, similarities))
        kept = neighbors[order[:keep_budget]]
        projected = np.zeros_like(bits)
        projected[kept] = 1
        return projected

    def project_degrees(self, degrees: Sequence[int]) -> DegreeProjectionResult:
        """Degree-vector shortcut of `Project` — ``O(n)`` memory, no rows.

        For a degree-local statistic only the *row sums* of the projected
        bit vectors matter, and those are fully determined by the bound:
        a user with ``d_i <= d'_max`` keeps her row (sum ``d_i``), and a user
        with ``d_i > d'_max`` keeps exactly the ``floor(d'_max)`` most
        similar neighbours (sum ``floor(d'_max)``) — the similarity ranking
        in :meth:`project_user` decides *which* neighbours survive, never
        *how many*.  This method therefore reproduces
        ``project_graph(...).projected_rows.sum(axis=1)`` bit for bit while
        touching nothing but the degree vector, which is what lets the
        sparse release path run at 100k+ users.

        Examples
        --------
        >>> SimilarityProjection(2.5).project_degrees([1, 3, 2, 4]).projected_degrees
        array([1, 2, 2, 2])
        """
        original = np.asarray(degrees, dtype=np.int64)
        if original.ndim != 1:
            raise ConfigurationError(
                f"degrees must be a 1-D sequence, got shape {original.shape}"
            )
        over = original > self._degree_bound
        projected = np.where(over, np.int64(int(self._degree_bound)), original)
        return DegreeProjectionResult(
            projected_degrees=projected,
            degree_bound=self._degree_bound,
            edges_removed=int((original - projected).sum()),
            users_projected=int(np.count_nonzero(over)),
        )

    def project_graph(
        self,
        graph: Graph,
        noisy_degrees: Optional[Sequence[float]] = None,
    ) -> ProjectionResult:
        """Project every user's bit vector of *graph*.

        When *noisy_degrees* is omitted the true degrees are used for the
        similarity computation (useful for isolating projection loss from
        the `Max` estimation error, as the Figure 9/10 experiments do).
        """
        degrees = graph.degrees()
        reference_degrees: Sequence[float] = (
            noisy_degrees if noisy_degrees is not None else [float(d) for d in degrees]
        )
        if len(reference_degrees) != graph.num_nodes:
            raise ConfigurationError(
                "noisy_degrees length must equal the number of nodes: "
                f"{len(reference_degrees)} vs {graph.num_nodes}"
            )
        rows = np.zeros((graph.num_nodes, graph.num_nodes), dtype=np.int64)
        edges_removed = 0
        users_projected = 0
        for user in graph.nodes():
            original = graph.adjacency_bit_vector(user)
            projected = self.project_user(original, degrees[user], reference_degrees)
            removed = int(original.sum() - projected.sum())
            if removed > 0:
                users_projected += 1
                edges_removed += removed
            rows[user] = projected
        return ProjectionResult(
            projected_rows=rows,
            degree_bound=self._degree_bound,
            edges_removed=edges_removed,
            users_projected=users_projected,
        )


def projected_triangle_count(projected_rows: np.ndarray) -> int:
    """Plaintext evaluation of the count Algorithm 4 computes securely.

    Evaluates ``sum_{i<j<k} a_ij * a_ik * a_jk`` where ``a_ij`` and ``a_ik``
    are read from user ``i``'s (projected) row and ``a_jk`` from user ``j``'s
    row.  Used as ground truth for the secure backends and to measure
    projection loss.
    """
    rows = np.asarray(projected_rows, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[0] != rows.shape[1]:
        raise ConfigurationError(f"projected_rows must be square, got {rows.shape}")
    n = rows.shape[0]
    if n < 3:
        return 0
    # Strictly-upper-triangular view: C[i, j] = a_ij for i < j, read from row i.
    upper = np.triu(rows, k=1)
    # For each pair (j, k) with j < k, the number of i < j with
    # a_ij = a_ik = 1 is (C^T C)[j, k] restricted to i < j, which the strict
    # upper-triangular structure of C already enforces.
    wedge_counts = upper.T @ upper
    return int(np.sum(np.triu(wedge_counts, k=1) * upper))
