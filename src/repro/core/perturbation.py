"""Algorithm 5 — `Perturb`: distributed perturbation of the shared count.

Each user samples a partial noise ``γ_i = Gamma(1/n, λ) - Gamma(1/n, λ)``
with ``λ = d'_max / ε2``, fixed-point encodes it, splits it into two additive
shares, and sends one share to each server.  Each server sums the ``n`` noise
shares it received and adds the sum to its share of the (fixed-point scaled)
triangle count.  Reconstructing the two noisy shares therefore yields
``T + Lap(d'_max / ε2)`` up to fixed-point rounding — exactly the Laplace
mechanism a trusted central server would have applied, but with no party ever
observing the raw count or any individual noise contribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.counting import CountResult
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.sharing import share_scalar
from repro.dp.gamma_noise import DistributedLaplaceNoise, stacked_noise_supported
from repro.exceptions import PrivacyError
from repro.utils.rng import (
    RandomState,
    derive_rng,
    spawn_rngs,
    spawn_state_matrix,
    uniforms_from_states,
)


@dataclass(frozen=True)
class PerturbationResult:
    """Output of the `Perturb` step.

    Attributes
    ----------
    noisy_count:
        The reconstructed, noise-protected triangle count ``T'`` (a float —
        the Laplace noise is real-valued).
    aggregate_noise:
        The total noise that was added (available because the experiments
        need to decompose error sources; a deployment would not reveal it).
    noisy_share1 / noisy_share2:
        The two servers' shares of the fixed-point noisy count prior to the
        final reconstruction.
    epsilon2:
        The budget spent by this invocation.
    sensitivity:
        The sensitivity (``d'_max``) used for the noise scale.
    """

    noisy_count: float
    aggregate_noise: float
    noisy_share1: int
    noisy_share2: int
    epsilon2: float
    sensitivity: float


class DistributedPerturbation:
    """Runs the `Perturb` protocol.

    Parameters
    ----------
    epsilon2:
        Budget for the triangle-count perturbation.
    sensitivity:
        Sensitivity of the projected triangle count; CARGO uses the noisy
        maximum degree ``d'_max``.
    num_users:
        Number of users contributing partial noise.
    ring:
        Secret-sharing ring for the noise shares.
    fixed_point_bits:
        Fractional bits for embedding real noise in the ring.
    """

    def __init__(
        self,
        epsilon2: float,
        sensitivity: float,
        num_users: int,
        ring: Ring = DEFAULT_RING,
        fixed_point_bits: int = 16,
    ) -> None:
        if num_users <= 0:
            raise PrivacyError(f"num_users must be positive, got {num_users}")
        self._ring = ring
        self._noise = DistributedLaplaceNoise(
            epsilon=epsilon2,
            sensitivity=sensitivity,
            num_users=num_users,
            fixed_point_bits=fixed_point_bits,
        )

    @property
    def noise_config(self) -> DistributedLaplaceNoise:
        """The distributed-noise configuration (scale, encoding factor)."""
        return self._noise

    def run(
        self,
        count_result: CountResult,
        rng: RandomState = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> PerturbationResult:
        """Execute `Perturb` on the secret-shared triangle count.

        Parameters
        ----------
        count_result:
            The two servers' shares of the true (projected) triangle count.
        rng:
            Seed or generator; every user derives an independent substream.
        runtime:
            Optional communication runtime; when given, each user's two noise
            shares and the final cross-server exchange are routed through it
            so they appear in the communication ledger.
        authenticator:
            Optional :class:`~repro.crypto.mac.OpeningAuthenticator`.  The
            final reconstruction is the one opening every statistic performs
            (degree-local statistics have no other), so routing it through
            the MAC check means even a zero-round count cannot be tampered
            with undetected.
        """
        ring = self._ring
        noise = self._noise
        factor = noise.fixed_point_factor
        num_users = noise.num_users

        # Servers locally lift their count shares to the fixed-point domain.
        scaled_share1 = ring.mul(ring.encode(count_result.share1), factor)
        scaled_share2 = ring.mul(ring.encode(count_result.share2), factor)

        if stacked_noise_supported():
            # Loop-free noise plane: three uint64 words per user, drawn from
            # her own spawned substream — two become the uniforms behind the
            # inverse-CDF Gamma difference, the third is her sharing mask.
            states = spawn_state_matrix(rng, num_users, words=3)
            gammas = noise.sample_noises_from_uniforms(
                uniforms_from_states(states[:, 0]), uniforms_from_states(states[:, 1])
            )
            encoded = noise.encode_array(gammas)
            noise_total_encoded = int(np.sum(encoded.astype(object)))
            encoded_ring = ring.encode(encoded)
            share1_plane = states[:, 2] & np.uint64(ring.mask)
            share2_plane = ring.sub(encoded_ring, share1_plane)
            agg_share1 = ring.sum(share1_plane)
            agg_share2 = ring.sum(share2_plane)
            if runtime is not None:
                runtime.users_to_server(1, "noise_share", share1_plane)
                runtime.users_to_server(2, "noise_share", share2_plane)
        else:
            user_rngs = spawn_rngs(rng if rng is not None else derive_rng(None), num_users)
            noise_total_encoded = 0
            agg_share1 = 0
            agg_share2 = 0
            share1_list = []
            share2_list = []
            for user_rng in user_rngs:
                gamma = noise.sample_user_noise(user_rng)
                encoded_value = noise.encode(gamma)
                noise_total_encoded += encoded_value
                pair = share_scalar(encoded_value, ring=ring, rng=user_rng)
                agg_share1 = ring.add(agg_share1, pair.share1)
                agg_share2 = ring.add(agg_share2, pair.share2)
                share1_list.append(pair.share1)
                share2_list.append(pair.share2)
            if runtime is not None:
                runtime.users_to_server(1, "noise_share", np.asarray(share1_list, dtype=ring.dtype))
                runtime.users_to_server(2, "noise_share", np.asarray(share2_list, dtype=ring.dtype))

        noisy_share1 = ring.add(scaled_share1, agg_share1)
        noisy_share2 = ring.add(scaled_share2, agg_share2)
        if runtime is not None:
            runtime.server_to_server(1, 2).send("noisy_count_share", noisy_share1)
            runtime.server_to_server(2, 1).send("noisy_count_share", noisy_share2)

        if authenticator is not None:
            (opened,) = authenticator.exchange(
                "release_opening", [(noisy_share1, noisy_share2)]
            )
        else:
            opened = ring.add(noisy_share1, noisy_share2)
        combined = ring.decode_signed(opened)
        noisy_count = combined / factor
        return PerturbationResult(
            noisy_count=float(noisy_count),
            aggregate_noise=noise.decode(noise_total_encoded),
            noisy_share1=int(noisy_share1),
            noisy_share2=int(noisy_share2),
            epsilon2=noise.epsilon,
            sensitivity=noise.sensitivity,
        )
