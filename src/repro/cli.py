"""Command-line entry point: regenerate any paper table or figure.

Usage::

    repro-cargo list
    repro-cargo table4
    repro-cargo fig5 --num-nodes 200 --trials 2
    repro-cargo run --backend blocked --statistic 4cycles \
        --trace-out trace.json --metrics-out metrics.prom
    python -m repro.cli fig9 --num-nodes 300

Every experiment accepts a few common overrides (number of nodes, number of
trials, seed) so a quick run and a paper-scale run use the same entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.exceptions import ReproError
from repro.experiments.specs import get_experiment, list_experiments


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-cargo",
        description="Regenerate tables and figures from the CARGO paper (ICDE 2024).",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (e.g. table4, fig5) or 'list' to enumerate them; "
        "may be omitted when --stream is given",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run the continual-release streaming experiment (shorthand for "
        "the 'stream' experiment name)",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help="run the empirical privacy audit of the full release (shorthand "
        "for the 'audit' experiment name)",
    )
    parser.add_argument(
        "--authenticate",
        action="store_true",
        help="run with MAC-authenticated openings (CargoConfig authenticate; "
        "a cheating server aborts the run with a typed error instead of "
        "biasing the count — honest releases are bit-identical)",
    )
    parser.add_argument(
        "--distributed",
        action="store_true",
        help="run CARGO releases on the process-separated runtime "
        "(CargoConfig distributed; dealer and both servers fork as OS "
        "processes and every protocol message crosses a socket — releases "
        "and ledgers are bit-identical to the in-process engine)",
    )
    parser.add_argument(
        "--release-every",
        type=int,
        default=None,
        help="streaming: publish a DP release every this many edge events",
    )
    parser.add_argument(
        "--anchor-every",
        type=int,
        default=None,
        help="streaming: re-run the secure Count phase every this many "
        "releases (0 disables anchoring)",
    )
    parser.add_argument("--num-nodes", type=int, default=None, help="override the graph size")
    parser.add_argument("--trials", type=int, default=None, help="override the number of trials")
    parser.add_argument("--epsilon", type=float, default=None, help="override the privacy budget")
    parser.add_argument("--seed", type=int, default=None, help="override the base random seed")
    parser.add_argument(
        "--backend",
        default=None,
        help="secure counting backend for experiments that run CARGO "
        "(a registered name, e.g. matrix, blocked, batched, faithful)",
    )
    parser.add_argument(
        "--statistic",
        default=None,
        help="subgraph statistic for experiments that run CARGO "
        "(a registered name, e.g. triangles, kstars, wedges, 4cycles)",
    )
    parser.add_argument(
        "--star-k",
        type=int,
        default=None,
        help="star size for the kstars statistic (default 2, i.e. wedges)",
    )
    parser.add_argument(
        "--max-workers",
        type=int,
        default=None,
        help="run sweep cells on this many worker threads (deterministic; "
        "identical rows to a serial run)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads for each secure count's tile-parallel engine "
        "(CargoConfig/StreamingConfig workers; transcripts are bit-identical "
        "for any count, so this is purely a wall-clock knob)",
    )
    parser.add_argument(
        "--sparse",
        choices=("auto", "never", "force"),
        default=None,
        help="degree-local execution policy for CARGO runs (CargoConfig "
        "sparse; 'auto' runs degree statistics on O(n) degree vectors, "
        "'force' errors on statistics that cannot run sparse)",
    )
    parser.add_argument(
        "--tile-window",
        type=int,
        default=None,
        help="bounded tile window for the blocked backend (CargoConfig "
        "tile_window; peak offline-material memory is set by the window, "
        "not the graph size, with bit-identical transcripts)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="FILE",
        help="journal run progress to FILE (atomic write-then-rename) so a "
        "killed run can be resumed; supported by the streaming and "
        "tile-window experiments",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the --checkpoint file when it exists; the resumed "
        "run's releases and ledgers are bit-identical to an uninterrupted run",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retry transient I/O failures (triple-store reads, checkpoint "
        "writes, pool tasks, anchors) up to N attempts per operation",
    )
    parser.add_argument(
        "--strict-integrity",
        action="store_true",
        help="raise IntegrityError on corrupted persisted material instead "
        "of silently re-dealing it",
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="FILE",
        help="install a deterministic fault-injection plan (JSON produced by "
        "FaultPlan.to_json) for the run — chaos-testing aid",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a schema-versioned JSON run manifest (span tree, metrics, "
        "releases) to FILE after the experiment",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's metric registry in Prometheus text format to FILE",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the result rows as JSON instead of a table"
    )
    return parser


def _build_resilience(args: argparse.Namespace):
    """A ResilienceConfig from the CLI flags, or ``None`` when all are off."""
    if not (
        args.checkpoint
        or args.resume
        or args.retries is not None
        or args.strict_integrity
    ):
        return None
    from repro.resilience import ResilienceConfig, RetryPolicy

    retry = None
    if args.retries is not None:
        if args.retries < 1:
            raise ReproError(f"--retries must be at least 1, got {args.retries}")
        retry = RetryPolicy(max_attempts=args.retries, seed=args.seed or 0)
    return ResilienceConfig(
        retry=retry,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        strict_integrity=args.strict_integrity,
    )


def _collect_overrides(
    args: argparse.Namespace, runner, telemetry=None, resilience=None
) -> dict:
    """Map CLI flags onto the experiment function's keyword parameters."""
    import inspect

    accepted = set(inspect.signature(runner).parameters)
    overrides = {}
    if telemetry is not None and "telemetry" in accepted:
        overrides["telemetry"] = telemetry
    if resilience is not None:
        if "resilience" not in accepted:
            raise ReproError(
                f"experiment {args.experiment!r} does not support "
                "--checkpoint/--resume/--retries/--strict-integrity"
            )
        overrides["resilience"] = resilience
    if args.num_nodes is not None and "num_nodes" in accepted:
        overrides["num_nodes"] = args.num_nodes
    if args.trials is not None and "num_trials" in accepted:
        overrides["num_trials"] = args.trials
    if args.epsilon is not None:
        if "epsilon" in accepted:
            overrides["epsilon"] = args.epsilon
        elif "epsilons" in accepted:
            overrides["epsilons"] = (args.epsilon,)
    if args.seed is not None and "seed" in accepted:
        overrides["seed"] = args.seed
    if args.backend is not None and "counting_backend" in accepted:
        overrides["counting_backend"] = args.backend
    if args.statistic is not None and "statistic" in accepted:
        overrides["statistic"] = args.statistic
    if args.star_k is not None and "star_k" in accepted:
        overrides["star_k"] = args.star_k
    if args.max_workers is not None and "max_workers" in accepted:
        overrides["max_workers"] = args.max_workers
    if args.workers is not None and "workers" in accepted:
        overrides["workers"] = args.workers
    if args.sparse is not None and "sparse" in accepted:
        overrides["sparse"] = args.sparse
    if args.tile_window is not None and "tile_window" in accepted:
        overrides["tile_window"] = args.tile_window
    if args.authenticate and "authenticate" in accepted:
        overrides["authenticate"] = True
    if args.distributed:
        if "distributed" not in accepted:
            raise ReproError(
                f"experiment {args.experiment!r} does not support --distributed"
            )
        overrides["distributed"] = True
    if args.release_every is not None and "release_every" in accepted:
        overrides["release_every"] = args.release_every
    if args.anchor_every is not None and "anchor_every" in accepted:
        overrides["anchor_every"] = args.anchor_every
    return overrides


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.stream and args.audit:
        parser.error("--stream and --audit are mutually exclusive")
    if args.experiment is None:
        if args.stream:
            args.experiment = "stream"
        elif args.audit:
            args.experiment = "audit"
        else:
            parser.error("an experiment name is required (or pass --stream/--audit)")
    elif args.stream and args.experiment.lower() != "stream":
        parser.error(
            f"--stream conflicts with the explicit experiment name {args.experiment!r}"
        )
    elif args.audit and args.experiment.lower() != "audit":
        parser.error(
            f"--audit conflicts with the explicit experiment name {args.experiment!r}"
        )

    if args.experiment.lower() == "list":
        for name in list_experiments():
            spec = get_experiment(name)
            print(f"{name:<8} {spec.paper_artifact:<11} {spec.description}")
        return 0

    # A telemetry session is created whenever an exporter (or the JSON
    # payload, which embeds a summary block) can consume it; experiments
    # that do not accept a ``telemetry`` parameter simply run untraced.
    telemetry = None
    if args.trace_out or args.metrics_out or args.json:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()

    # Fault plans are a chaos-testing aid: injected crashes exit with a
    # distinct code (2) so a harness can tell "killed as planned" from a
    # typed protocol failure (1).
    from contextlib import nullcontext

    fault_context = nullcontext()
    if args.fault_plan:
        from repro.resilience import FaultPlan, install_fault_plan

        try:
            plan = FaultPlan.from_json(Path(args.fault_plan).read_text())
        except (OSError, ValueError, KeyError) as error:
            print(f"error: unreadable fault plan: {error}", file=sys.stderr)
            return 1
        fault_context = install_fault_plan(plan)

    from repro.resilience.faults import InjectedCrash

    try:
        with fault_context:
            resilience = _build_resilience(args)
            spec = get_experiment(args.experiment)
            overrides = _collect_overrides(
                args, spec.runner, telemetry=telemetry, resilience=resilience
            )
            report = spec.run(**overrides)

            if args.trace_out:
                from repro.telemetry import write_trace

                write_trace(
                    telemetry,
                    args.trace_out,
                    experiment=args.experiment,
                    description=report.description,
                )
            if args.metrics_out:
                from repro.telemetry import write_metrics

                write_metrics(telemetry.metrics, args.metrics_out)
    except InjectedCrash as error:
        print(f"crashed (injected): {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        # Untyped I/O failures (including injected transient ones that
        # exhausted no retry policy) still exit with a one-line message.
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.json:
        import json

        from repro.telemetry import summary_block

        payload = {
            "name": report.name,
            "description": report.description,
            "rows": report.rows,
            "telemetry": summary_block(telemetry),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.to_text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
