"""The subgraph-statistic contract: one object per privately released count.

CARGO's two-server architecture — private `Max`, similarity projection,
secure `Count` on secret shares, calibrated noise — is statistic-agnostic:
nothing in the pipeline is specific to triangles except the counting kernel,
its sensitivity bound, and the geometry of the candidate set the servers
enumerate.  :class:`SubgraphStatistic` bundles exactly those three pieces so
the orchestrator (:class:`~repro.core.cargo.Cargo`) can release *any*
registered subgraph count through the same protocol:

* the **plain kernel** (:meth:`plain_count` / :meth:`projected_count`) —
  the exact count on a clear graph and on the users' projected bit vectors,
* the **secure-share formulation** (:meth:`secure_count`) — how the two
  servers evaluate the same quantity on additive secret shares, reusing the
  counting-backend registry, Beaver/multiplication-group dealers, and the
  communication runtime,
* the **sensitivity bound** (:meth:`statistic_sensitivity` /
  :meth:`node_sensitivity`) — how much one edge (Edge-DP) or one node
  (Node-DP) can move the count on a degree-bounded graph, which calibrates
  the `Perturb` noise, and
* the **candidate geometry** (:meth:`num_candidates`) — how many secure
  products the servers' enumeration processes, the quantity cost models and
  the progress accounting are built on.

Some statistics are most naturally evaluated on an integer multiple of the
final count (the 4-cycle kernel computes ``4 · #C4`` so the servers never
divide inside the ring, where division is not defined); :attr:`release_scale`
records that multiple and the orchestrator divides once after the noisy
reconstruction — post-processing, so the DP guarantee is untouched.

Concrete statistics register with
:func:`~repro.stats.registry.register_statistic`, the exact pattern of the
counting-backend registry, and are selected by name through
``CargoConfig(statistic=...)``.

.. note::
   Modules in :mod:`repro.stats` must not import :mod:`repro.analysis`,
   :mod:`repro.core.config` or :mod:`repro.core.cargo` at module level:
   ``Cargo`` imports this package while :mod:`repro.core` is still
   initialising, and :mod:`repro.analysis` imports ``Cargo``.  Plain
   counting kernels therefore live here (on the statistic objects) and
   :mod:`repro.analysis.subgraphs` re-exports them, not the other way
   around.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.backends.base import CountResult
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.graph.graph import Graph
from repro.utils.rng import RandomState

__all__ = ["SubgraphStatistic", "validate_projected_rows"]


def validate_projected_rows(projected_rows: np.ndarray) -> np.ndarray:
    """Coerce *projected_rows* to a square int64 matrix (the users' bit rows).

    Every statistic's plaintext and secure kernels consume the same object:
    one (possibly asymmetric, because projection is local) 0/1 row per user.

    Examples
    --------
    >>> import numpy as np
    >>> validate_projected_rows(np.eye(3)).dtype
    dtype('int64')
    """
    rows = np.asarray(projected_rows, dtype=np.int64)
    if rows.ndim != 2 or rows.shape[0] != rows.shape[1]:
        raise ProtocolError(f"projected_rows must be a square matrix, got {rows.shape}")
    return rows


class SubgraphStatistic(abc.ABC):
    """Abstract base class for privately releasable subgraph statistics.

    Subclasses define the class attributes :attr:`name` (the registry key),
    :attr:`description`, and :attr:`release_scale`, plus the abstract
    methods below.  The pair convention shared by every built-in kernel is
    the one Algorithm 4 fixes for triangles: the bit for the unordered pair
    ``{u, v}`` with ``u < v`` is always read from user ``u``'s (projected)
    row, so asymmetric local projections yield a well-defined count.
    """

    #: Registry key; subclasses override.
    name: str = ""
    #: One-line human description for CLIs and docs.
    description: str = ""
    #: The secure kernel computes ``release_scale * statistic``; the
    #: orchestrator divides once after the noisy reconstruction.
    release_scale: int = 1
    #: ``True`` for statistics that are functions of the degree sequence
    #: alone (k-stars, wedges).  Such statistics implement
    #: :meth:`degree_count` and :meth:`secure_count_from_degrees`, which lets
    #: the orchestrators run the whole release on degree vectors — ``O(n)``
    #: memory, no adjacency matrix — while remaining bit-identical to the
    #: dense row path.
    supports_degree_kernel: bool = False

    # ------------------------------------------------------------------ #
    # Plain kernel
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def plain_count(self, graph: Graph) -> int:
        """Exact statistic on a clear :class:`~repro.graph.graph.Graph`.

        Evaluation-only ground truth; a deployment never computes it.
        """

    @abc.abstractmethod
    def projected_count(self, projected_rows: np.ndarray) -> int:
        """Exact statistic on the users' (projected) bit rows.

        This is the quantity the secure kernel protects — the plaintext
        evaluation of the very expression the servers compute on shares, so
        ``secure_count(...).reconstruct() // release_scale`` must equal it
        bit for bit.
        """

    # ------------------------------------------------------------------ #
    # Secure-share formulation
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def secure_count(
        self,
        projected_rows: np.ndarray,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """Run the users' upload plus the two-server secure evaluation.

        Parameters
        ----------
        projected_rows:
            The users' projected bit rows (each user knows only her own).
        config:
            Duck-typed configuration; only the attributes a statistic needs
            (``ring``, ``counting_backend``, ``batch_size``, ``block_size``,
            ``star_k``, …) are read, so :class:`~repro.core.config.CargoConfig`
            and :class:`~repro.stream.orchestrator.StreamingConfig` both work.
        share_rng / dealer_rng:
            Independent substreams for the users' share masks and the
            offline dealer.
        views:
            Optional per-server view recorder for the security tests.
        runtime:
            Optional communication runtime; when given, user uploads are
            routed through it so they appear in the ledger.
        authenticator:
            Optional :class:`~repro.crypto.mac.OpeningAuthenticator`; when
            given, every opening round of the secure evaluation runs under
            its batched MAC check (statistics with zero opening rounds
            simply ignore it — the final release reconstruction is covered
            by the orchestrator).

        Returns
        -------
        CountResult
            Shares of ``release_scale *`` the projected statistic.
        """

    # ------------------------------------------------------------------ #
    # Optional degree-local (sparse) kernel
    # ------------------------------------------------------------------ #
    def degree_count(self, degrees: np.ndarray) -> int:
        """Exact statistic from a (projected) degree vector.

        Only meaningful when :attr:`supports_degree_kernel` is ``True``; a
        degree-local statistic must satisfy
        ``degree_count(rows.sum(axis=1)) == projected_count(rows)`` for every
        square 0/1 row matrix, which is what makes the sparse path a drop-in
        replacement for the dense one.
        """
        raise ProtocolError(
            f"statistic {self.name!r} has no degree-local kernel; "
            "it needs the full projected rows"
        )

    def secure_count_from_degrees(
        self,
        degrees: np.ndarray,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """Secure kernel on a (projected) degree vector instead of bit rows.

        The sparse twin of :meth:`secure_count`: the transcript (messages,
        share values, reconstruction) must be bit-identical to
        ``secure_count(rows, ...)`` whenever ``degrees == rows.sum(axis=1)``
        and the same ``share_rng`` substream is supplied.  Peak memory is
        ``O(n)``, so degree-local statistics release at scales where the
        ``n x n`` row matrix cannot exist.
        """
        raise ProtocolError(
            f"statistic {self.name!r} has no degree-local secure kernel; "
            "it needs the full projected rows"
        )

    # ------------------------------------------------------------------ #
    # Sensitivity after degree projection
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def statistic_sensitivity(self, degree_bound: float) -> float:
        """Edge-DP sensitivity of the statistic on a ``degree_bound``-bounded graph.

        The bound that calibrates the Laplace noise once projection has
        enforced ``degree_bound`` on every user's row (CARGO passes the noisy
        maximum degree ``d'_max``).  Expressed in units of the *statistic*,
        not of the scaled secure output; the orchestrator multiplies by
        :attr:`release_scale` when it perturbs the raw shares.
        """

    @abc.abstractmethod
    def node_sensitivity(self, degree_bound: float) -> float:
        """Node-DP sensitivity on a degree-bounded graph (paper's extension)."""

    # ------------------------------------------------------------------ #
    # Candidate-enumeration geometry
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def num_candidates(self, num_users: int) -> int:
        """Size of the candidate set the secure enumeration processes.

        Triangles enumerate ``C(n, 3)`` vertex triples, 4-cycles ``C(n, 2)``
        wedge pairs, k-stars ``n`` per-user contributions; cost models and
        the backends' progress accounting are built on this geometry.
        """

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def secure_output_sensitivity(self, degree_bound: float) -> float:
        """Sensitivity of the raw (scaled) secure output: ``scale · Δstatistic``."""
        return self.release_scale * self.statistic_sensitivity(degree_bound)

    def finalise(self, raw_value: float) -> float:
        """Undo :attr:`release_scale` on a reconstructed (possibly noisy) output."""
        if self.release_scale == 1:
            return raw_value
        return raw_value / self.release_scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
