"""Derived releases composed from registered statistics.

A *derived* release is not a subgraph count itself but a function of several
private counts; the composition spends one total budget, tracked through a
:class:`~repro.dp.accountant.PrivacyAccountant` so every component spend is
on the ledger.  The global clustering coefficient ``3 T / S_2`` (triangles
over wedges) is the canonical example the paper's introduction motivates and
the one shipped here: both numerator and denominator run through the full
statistic pipeline (`Max` → `Project` → secure `Count` → `Perturb`), so no
party ever observes either raw count.

.. note::
   Imports of :class:`~repro.core.cargo.Cargo` stay inside the methods:
   :mod:`repro.core` imports :mod:`repro.stats` while it is still
   initialising, so a module-level import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dp.accountant import PrivacyAccountant
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph

__all__ = ["ClusteringCoefficientRelease", "DerivedReleaseResult"]

#: Default share of the budget given to the triangle estimate (the noisier,
#: higher-relative-error component).
DEFAULT_TRIANGLE_FRACTION = 0.8


@dataclass(frozen=True)
class DerivedReleaseResult:
    """Output of a derived (composed) release.

    Attributes
    ----------
    value:
        The derived estimate (for the clustering coefficient: ``3 T' / S_2'``
        clamped to ``[0, 1]``).
    components:
        The private component releases the value was formed from, keyed by
        statistic name.
    exact_value:
        Ground truth, computed in the clear for evaluation only.
    epsilon:
        Total budget consumed across all components.
    ledger:
        The accountant's ``(label, epsilon)`` entries, one per component
        phase, so the composition is auditable.
    """

    value: float
    components: dict
    exact_value: float
    epsilon: float
    ledger: tuple

    @property
    def absolute_error(self) -> float:
        """``|value - exact_value|``."""
        return abs(self.value - self.exact_value)


class ClusteringCoefficientRelease:
    """Global clustering coefficient via composed triangle + 2-star releases.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole composition.
    triangle_fraction:
        Share of ε spent on the triangle release; the remainder funds the
        2-star (wedge) release.
    seed:
        Master seed; the two component runs derive independent substreams.
    counting_backend:
        Secure counting backend both component runs execute through.

    Examples
    --------
    >>> from repro.graph import load_dataset
    >>> from repro.stats import ClusteringCoefficientRelease
    >>> graph = load_dataset("facebook", num_nodes=120)
    >>> release = ClusteringCoefficientRelease(epsilon=8.0, seed=7).run(graph)
    >>> 0.0 <= release.value <= 1.0
    True
    >>> [label for label, _ in release.ledger]
    ['clustering/triangles', 'clustering/wedges']
    """

    def __init__(
        self,
        epsilon: float,
        triangle_fraction: float = DEFAULT_TRIANGLE_FRACTION,
        seed: Optional[int] = None,
        counting_backend: str = "matrix",
    ) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if not (0 < triangle_fraction < 1):
            raise PrivacyError(
                f"triangle_fraction must be in (0, 1), got {triangle_fraction}"
            )
        self._epsilon = float(epsilon)
        self._triangle_fraction = float(triangle_fraction)
        self._seed = seed
        self._counting_backend = counting_backend

    @property
    def epsilon(self) -> float:
        """Total budget the composition spends."""
        return self._epsilon

    def run(self, graph: Graph) -> DerivedReleaseResult:
        """Release the clustering coefficient of *graph* under the total ε."""
        from repro.core.cargo import Cargo
        from repro.core.config import CargoConfig
        from repro.graph.statistics import global_clustering_coefficient

        accountant = PrivacyAccountant(total_budget=self._epsilon * (1.0 + 1e-9))
        epsilon_triangles = self._epsilon * self._triangle_fraction
        epsilon_wedges = self._epsilon - epsilon_triangles

        triangle_result = Cargo(
            CargoConfig(
                epsilon=epsilon_triangles,
                seed=self._seed,
                statistic="triangles",
                counting_backend=self._counting_backend,
            )
        ).run(graph)
        accountant.spend(epsilon_triangles, label="clustering/triangles")

        wedge_seed = None if self._seed is None else self._seed + 1
        wedge_result = Cargo(
            CargoConfig(
                epsilon=epsilon_wedges,
                seed=wedge_seed,
                statistic="kstars",
                star_k=2,
                counting_backend=self._counting_backend,
            )
        ).run(graph)
        accountant.spend(epsilon_wedges, label="clustering/wedges")

        noisy_wedges = max(wedge_result.noisy_count, 1.0)
        estimate = 3.0 * triangle_result.noisy_count / noisy_wedges
        estimate = min(max(estimate, 0.0), 1.0)
        return DerivedReleaseResult(
            value=estimate,
            components={
                "triangles": triangle_result.noisy_count,
                "wedges": wedge_result.noisy_count,
            },
            exact_value=global_clustering_coefficient(graph),
            epsilon=accountant.spent,
            ledger=tuple(accountant.ledger()),
        )
