"""Name-based registry of subgraph statistics, parallel to the backend registry.

The orchestrator never instantiates a concrete statistic itself; it asks this
registry to build whichever statistic the configuration names.  Built-in
statistics self-register at import time (importing :mod:`repro.stats` is
enough); third-party code registers its own with the same decorator::

    from repro.stats import SubgraphStatistic, register_statistic

    @register_statistic("5-cliques")
    class FiveCliqueStatistic(SubgraphStatistic):
        @classmethod
        def from_config(cls, config):
            return cls()
        ...

    CargoConfig(statistic="5-cliques")  # now resolves

A registration can be either a :class:`~repro.stats.base.SubgraphStatistic`
subclass (built via its ``from_config`` classmethod) or a plain factory
callable with the signature ``factory(config)``; the latter lets one class
serve several named statistics (``kstars`` and ``wedges`` share the k-star
kernel).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Union

from repro.exceptions import ConfigurationError
from repro.stats.base import SubgraphStatistic

__all__ = [
    "register_statistic",
    "unregister_statistic",
    "resolve_statistic_name",
    "statistic_registered",
    "available_statistics",
    "get_statistic_factory",
    "create_statistic",
]

#: A registered entry: a statistic class or a ``factory(config)`` callable.
StatisticFactory = Callable[..., SubgraphStatistic]

_REGISTRY: Dict[str, StatisticFactory] = {}


def register_statistic(name: str) -> Callable[[StatisticFactory], StatisticFactory]:
    """Class/function decorator registering a subgraph statistic under *name*.

    The decorated object is returned unchanged.  Registering a name twice is
    an error (it would silently shadow an existing statistic).
    """
    key = str(name).lower()
    if not key:
        raise ConfigurationError("statistic name must be a non-empty string")

    def decorator(factory: StatisticFactory) -> StatisticFactory:
        if key in _REGISTRY:
            raise ConfigurationError(f"statistic {key!r} is already registered")
        if isinstance(factory, type) and not issubclass(factory, SubgraphStatistic):
            raise ConfigurationError(
                f"statistic class {factory.__name__} must subclass SubgraphStatistic"
            )
        _REGISTRY[key] = factory
        return factory

    return decorator


def unregister_statistic(name: str) -> None:
    """Remove a registered statistic (primarily for tests of the registry itself)."""
    _REGISTRY.pop(resolve_statistic_name(name), None)


def resolve_statistic_name(name: Union[str, enum.Enum]) -> str:
    """Normalise an enum member or string to the registry's lower-case key."""
    if isinstance(name, enum.Enum):
        name = name.value
    return str(name).lower()


def statistic_registered(name: Union[str, enum.Enum]) -> bool:
    """Whether *name* resolves to a registered statistic.

    Examples
    --------
    >>> import repro.stats
    >>> statistic_registered("triangles")
    True
    >>> statistic_registered("5-cliques")
    False
    """
    return resolve_statistic_name(name) in _REGISTRY


def available_statistics() -> List[str]:
    """Registered statistic names, sorted for stable presentation.

    Examples
    --------
    >>> import repro.stats
    >>> available_statistics()
    ['4cycles', 'kstars', 'triangles', 'wedges']
    """
    return sorted(_REGISTRY)


def get_statistic_factory(name: Union[str, enum.Enum]) -> StatisticFactory:
    """Look up the factory registered under *name*."""
    key = resolve_statistic_name(name)
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown statistic {key!r}; registered: {', '.join(available_statistics())}"
        )
    return _REGISTRY[key]


def create_statistic(name: Union[str, enum.Enum], config=None) -> SubgraphStatistic:
    """Instantiate the statistic registered under *name* for *config*.

    *config* is passed through to the statistic's factory (duck-typed —
    only attributes the statistic reads, such as ``star_k``, are accessed),
    so :class:`~repro.core.config.CargoConfig`,
    :class:`~repro.stream.orchestrator.StreamingConfig`, and plain
    namespaces all work; ``None`` builds the statistic with its defaults.
    """
    factory = get_statistic_factory(name)
    if isinstance(factory, type):
        return factory.from_config(config)
    return factory(config)
