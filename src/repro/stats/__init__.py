"""Subgraph statistics: the generalised private counting engine.

CARGO's pipeline (private `Max`, similarity `Project`, secure `Count`,
calibrated `Perturb`) is statistic-agnostic; this package supplies the
pieces that are not:

* :mod:`repro.stats.base` — :class:`SubgraphStatistic`, bundling a plain
  counting kernel, a secure-share formulation, a post-projection
  sensitivity bound, and the candidate-enumeration geometry,
* :mod:`repro.stats.registry` — the name-based statistic registry, parallel
  to the counting-backend registry,
* :mod:`repro.stats.triangles` / :mod:`~repro.stats.kstars` /
  :mod:`~repro.stats.four_cycles` — the built-in statistics
  (``triangles``, ``kstars``/``wedges``, ``4cycles``),
* :mod:`repro.stats.derived` — composed releases (the clustering
  coefficient) spending one budget through the accountant.

Pick a statistic by registered name through the configuration::

    from repro.core import Cargo, CargoConfig

    result = Cargo(CargoConfig(epsilon=2.0, statistic="4cycles")).run(graph)

.. note::
   Import order in this module is load-bearing: :class:`~repro.core.cargo.
   Cargo` imports ``create_statistic`` from here *while the built-in
   statistic modules below are still importing* (they pull in
   :mod:`repro.core.backends`, which initialises :mod:`repro.core`).  The
   registry import must therefore precede the built-in imports.
"""

from repro.stats.base import SubgraphStatistic, validate_projected_rows
from repro.stats.registry import (
    available_statistics,
    create_statistic,
    get_statistic_factory,
    register_statistic,
    resolve_statistic_name,
    statistic_registered,
    unregister_statistic,
)
from repro.stats.triangles import TriangleStatistic
from repro.stats.kstars import (
    KStarStatistic,
    count_k_stars_exact,
    k_star_sensitivity_bounded,
)
from repro.stats.four_cycles import (
    FourCycleStatistic,
    candidate_pair_blocks,
    count_four_cycles_exact,
    four_cycle_sensitivity_bounded,
)
from repro.stats.derived import ClusteringCoefficientRelease, DerivedReleaseResult

__all__ = [
    "SubgraphStatistic",
    "validate_projected_rows",
    "register_statistic",
    "unregister_statistic",
    "resolve_statistic_name",
    "statistic_registered",
    "available_statistics",
    "get_statistic_factory",
    "create_statistic",
    "TriangleStatistic",
    "KStarStatistic",
    "count_k_stars_exact",
    "k_star_sensitivity_bounded",
    "FourCycleStatistic",
    "candidate_pair_blocks",
    "count_four_cycles_exact",
    "four_cycle_sensitivity_bounded",
    "ClusteringCoefficientRelease",
    "DerivedReleaseResult",
]
