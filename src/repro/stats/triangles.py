"""The triangle statistic — CARGO's original query on the new abstraction.

This is a pure repackaging of what :class:`~repro.core.cargo.Cargo` always
did: the plain kernel is :func:`~repro.graph.triangles.count_triangles` /
:func:`~repro.core.projection.projected_triangle_count`, the secure kernel
routes through the counting-backend registry (``faithful`` / ``batched`` /
``matrix`` / ``blocked`` — every backend computes the identical count), and
the sensitivity is the paper's Theorem: on a θ-degree-bounded graph one edge
change moves the count by at most θ common neighbours.  The transcript-
equivalence tests pin the refactor down: running ``triangles`` through the
statistic registry is bit-identical to the pre-registry pipeline for every
backend, including the communication ledger.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.backends import create_backend, share_adjacency_rows
from repro.core.backends.base import CountResult, num_candidate_triples
from repro.core.projection import projected_triangle_count
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.views import ViewRecorder
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.stats.base import SubgraphStatistic
from repro.stats.registry import register_statistic
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState

__all__ = ["TriangleStatistic"]


@register_statistic("triangles")
class TriangleStatistic(SubgraphStatistic):
    """Triangle counting: ``T = sum_{i<j<k} a_ij · a_ik · a_jk``.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> stat = TriangleStatistic()
    >>> stat.plain_count(Graph(4, edges=[(0, 1), (0, 2), (1, 2), (2, 3)]))
    1
    >>> stat.statistic_sensitivity(10.0)
    10.0
    """

    name = "triangles"
    description = "number of triangles (3-cliques)"
    release_scale = 1

    @classmethod
    def from_config(cls, config) -> "TriangleStatistic":
        """Triangles take no parameters; *config* is accepted for uniformity."""
        return cls()

    def plain_count(self, graph: Graph) -> int:
        """Exact triangle count of a clear graph."""
        return count_triangles(graph)

    def projected_count(self, projected_rows: np.ndarray) -> int:
        """Plaintext evaluation of the expression Algorithm 4 computes securely."""
        return projected_triangle_count(projected_rows)

    def secure_count(
        self,
        projected_rows: np.ndarray,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """Algorithm 4 through whichever counting backend *config* names.

        Backends self-register with the backend registry; this kernel only
        knows the configured name.  With a *runtime*, each user uploads one
        share of her projected bit vector to each server first, making the
        dominant communication cost visible in the ledger (the openings
        between servers are internal to the counter backends).
        """
        counter = create_backend(
            config.counting_backend, config=config, dealer_rng=dealer_rng, views=views,
            authenticator=authenticator,
        )
        tracer = resolve_telemetry(config).tracer
        if runtime is not None:
            with tracer.span("share", num_users=int(np.asarray(projected_rows).shape[0])):
                share1, share2 = share_adjacency_rows(
                    projected_rows, ring=config.ring, rng=share_rng
                )
                runtime.users_to_server(1, "adjacency_share", share1)
                runtime.users_to_server(2, "adjacency_share", share2)
            return counter.count_from_shares(share1, share2)
        return counter.count(projected_rows, rng=share_rng)

    def statistic_sensitivity(self, degree_bound: float) -> float:
        """Edge-DP sensitivity θ: one edge closes at most θ triangles (Theorem 2)."""
        return float(degree_bound)

    def node_sensitivity(self, degree_bound: float) -> float:
        """Node-DP bound ``C(θ, 2)``: a node's removal opens every neighbour pair."""
        bounded = float(degree_bound)
        return max(bounded * (bounded - 1.0) / 2.0, 1.0)

    def num_candidates(self, num_users: int) -> int:
        """``C(n, 3)`` vertex triples — Algorithm 4's candidate set."""
        return num_candidate_triples(num_users)
