"""The k-star statistic — a degree polynomial with a share-only secure kernel.

A *k-star* is a node together with ``k`` of its neighbours, so the global
count is ``S_k = sum_v C(d_v, k)`` (``k = 2`` gives wedges, the clustering
coefficient's denominator).  The statistic is *local*: each user evaluates
her own contribution ``C(d_i, k)`` in the clear from her projected bit
vector, exactly like she evaluates her degree for `Max`.  The secure kernel
therefore needs **no secure multiplication at all** — every user additively
shares her contribution and the servers sum their share columns locally:

1. user ``i`` computes ``c_i = C(sum_j â_ij, k)`` on her projected row,
2. she sends one additive share of ``c_i`` to each server,
3. each server sums the ``n`` shares it received (a local linear operation);
   the two sums are shares of ``S_k``, with zero opening rounds.

Compare the triangle kernel, which needs one three-way product per vertex
triple: k-stars trade candidate geometry (``n`` per-user contributions
instead of ``C(n, 3)`` triples) for a protocol that any backend name
executes identically, since there is nothing to schedule.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.backends.base import CountResult
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.ring import Ring
from repro.crypto.sharing import share_per_user
from repro.crypto.views import ViewRecorder
from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.stats.base import SubgraphStatistic, validate_projected_rows
from repro.stats.registry import register_statistic
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState

__all__ = ["KStarStatistic", "count_k_stars_exact", "k_star_sensitivity_bounded"]


def count_k_stars_exact(degrees: List[int], k: int) -> int:
    """``sum_v C(d_v, k)`` from a degree sequence.

    Examples
    --------
    >>> count_k_stars_exact([2, 2, 2], 2)  # a triangle has 3 wedges
    3
    """
    if k < 1:
        raise ConfigurationError(f"k must be at least 1, got {k}")
    return sum(math.comb(int(degree), k) for degree in degrees)


def k_star_sensitivity_bounded(degree_bound: float, k: int) -> float:
    """Edge-DP k-star sensitivity on a θ-bounded graph: ``2 · C(θ-1, k-1)``.

    Flipping edge ``{u, v}`` moves each endpoint's contribution by
    ``C(d-1, k-1) <= C(θ-1, k-1)``; clamped below at 1 so noise scales stay
    positive on degenerate graphs.
    """
    if k < 1:
        raise ConfigurationError(f"k must be at least 1, got {k}")
    bound = max(int(degree_bound), 0)
    return max(2.0 * math.comb(max(bound - 1, 0), k - 1), 1.0)


@register_statistic("kstars")
class KStarStatistic(SubgraphStatistic):
    """k-star counting: ``S_k = sum_v C(d_v, k)``.

    Parameters
    ----------
    k:
        Star size; ``2`` (the default) counts wedges.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> star = Graph(4, edges=[(0, 1), (0, 2), (0, 3)])
    >>> KStarStatistic(k=2).plain_count(star)
    3
    >>> KStarStatistic(k=3).plain_count(star)
    1
    """

    name = "kstars"
    description = "number of k-stars (a node plus k of its neighbours)"
    release_scale = 1
    supports_degree_kernel = True

    def __init__(self, k: int = 2) -> None:
        if k < 1:
            raise ConfigurationError(f"k must be at least 1, got {k}")
        self._k = int(k)

    @property
    def k(self) -> int:
        """The star size."""
        return self._k

    @classmethod
    def from_config(cls, config) -> "KStarStatistic":
        """Read ``star_k`` from the (duck-typed) config; default 2 (wedges)."""
        return cls(k=getattr(config, "star_k", 2))

    def plain_count(self, graph: Graph) -> int:
        """Exact k-star count of a clear graph."""
        return count_k_stars_exact(graph.degrees(), self._k)

    def degree_count(self, degrees) -> int:
        """``sum_i C(d_i, k)`` straight from a (projected) degree vector."""
        return count_k_stars_exact([int(d) for d in degrees], self._k)

    def projected_count(self, projected_rows: np.ndarray) -> int:
        """``sum_i C(row-degree_i, k)`` on the users' projected rows."""
        rows = validate_projected_rows(projected_rows)
        return self.degree_count(rows.sum(axis=1))

    def secure_count(
        self,
        projected_rows: np.ndarray,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """Additive aggregation of locally computed contributions.

        The statistic is a function of the degree sequence alone, so the
        dense entry point just reduces the rows to their degree vector and
        delegates to :meth:`secure_count_from_degrees` — one kernel, two
        input shapes, bit-identical transcripts.
        """
        rows = validate_projected_rows(projected_rows)
        return self.secure_count_from_degrees(
            rows.sum(axis=1),
            config=config,
            share_rng=share_rng,
            dealer_rng=dealer_rng,
            views=views,
            runtime=runtime,
            authenticator=authenticator,
        )

    def secure_count_from_degrees(
        self,
        degrees,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """The sparse (degree-vector) secure kernel — ``O(n)`` memory.

        Each user's share mask comes from her own spawned generator (the
        same non-coordinating pattern as
        :func:`~repro.core.backends.base.share_adjacency_rows`, via
        :func:`~repro.crypto.sharing.share_per_user`); the servers only ever
        see uniformly masked values and their local sums.  The dealer
        substream is accepted for interface uniformity but unused — there is
        no multiplication to provision for.  Likewise the *authenticator*:
        the kernel performs **zero opening rounds**, so its only wire-borne
        value is the final release reconstruction, which the orchestrator
        MAC-checks itself.
        """
        ring: Ring = config.ring
        degree_list = [int(d) for d in degrees]
        num_users = len(degree_list)
        tracer = resolve_telemetry(config).tracer
        with tracer.span(
            "backend",
            backend="degree-local",
            num_users=num_users,
            candidates=num_users,
            opening_rounds=0,
        ):
            # Contributions are arbitrary-precision Python ints reduced into
            # the ring individually (C(d, k) can exceed 64 bits for large
            # stars).
            encoded = np.fromiter(
                (math.comb(d, self._k) & ring.mask for d in degree_list),
                dtype=ring.dtype,
                count=num_users,
            )
            pair = share_per_user(encoded, ring=ring, rng=share_rng)
            share1, share2 = pair.share1, pair.share2
            if runtime is not None:
                runtime.users_to_server(1, "statistic_share", share1)
                runtime.users_to_server(2, "statistic_share", share2)
            if views is not None:
                views.observe(1, "statistic_share", share1)
                views.observe(2, "statistic_share", share2)
        return CountResult(
            share1=int(ring.sum(share1)),
            share2=int(ring.sum(share2)),
            num_triples_processed=num_users,
            opening_rounds=0,
        )

    def statistic_sensitivity(self, degree_bound: float) -> float:
        """Edge-DP sensitivity ``2 · C(θ-1, k-1)`` after projection to θ."""
        return k_star_sensitivity_bounded(degree_bound, self._k)

    def node_sensitivity(self, degree_bound: float) -> float:
        """Node-DP bound: own stars ``C(θ, k)`` plus θ neighbour shifts."""
        bound = max(int(degree_bound), 0)
        own = math.comb(bound, self._k)
        neighbours = bound * math.comb(max(bound - 1, 0), self._k - 1)
        return max(float(own + neighbours), 1.0)

    def num_candidates(self, num_users: int) -> int:
        """``n`` per-user contributions — the degree-local geometry."""
        return max(int(num_users), 0)


@register_statistic("wedges")
def _build_wedge_statistic(config=None) -> KStarStatistic:
    """The 2-star (wedge) statistic: the k-star kernel pinned at ``k = 2``."""
    return KStarStatistic(k=2)
