"""The 4-cycle statistic — wedge-pair openings over secret shares.

A *4-cycle* is a closed walk ``u–x–v–y–u`` on four distinct vertices.  Every
4-cycle contains exactly two opposite (diagonal) vertex pairs, so with
``w_uv = |N(u) ∩ N(v)|`` the co-degree (wedge count) of a pair,

``#C4 = (1/2) · sum_{u<v} C(w_uv, 2) = (1/4) · sum_{u<v} w_uv (w_uv - 1)``.

The secure kernel evaluates the right-hand sum ``S = 4 · #C4`` — division is
not defined inside the ring, so the servers compute the integer multiple and
the orchestrator divides after the (noisy) reconstruction, which is pure
post-processing.

**Edge convention.**  Projection is local, so user ``u`` may drop the edge
to ``v`` while ``v`` keeps it.  The 4-cycle kernel counts an edge only when
*both* endpoints report it (``A_uv = â_uv · â_vu``, "mutual consent"): this
makes the symmetrised degree of every node bounded by her *own* projected
row sum, so the θ-degree bound that projection enforces locally is a valid
global bound and ``Δ#C4 ≤ (θ-1)²`` per edge flip is honest.  (The triangle
kernel's one-sided convention cannot bound a node's in-edges from other
users' rows, which is harmless for triangles — its sensitivity argument
only reads the flipped user's own row — but not for 4-cycles.)  On an
unprojected graph both directions agree and the convention is invisible.

Execution strategies, selected by the configured counting-backend name:

* ``matrix`` — one element-wise product for the mutual-edge matrix, one
  matrix Beaver product for ``W = A @ A``, one element-wise product for
  ``W ⊙ (W - 1)`` over the strict upper triangle: three opening rounds.
* ``blocked`` — the same algebra streamed in ``block_size``-wide tiles with
  one small triple per tile, bounding peak triple memory at
  ``O(block_size²)`` exactly like the blocked triangle backend.
* ``faithful`` / ``batched`` — *wedge-pair openings*: candidate pairs
  ``(j, k)``, ``j < k``, are enumerated in blocks
  (:func:`candidate_pair_blocks`, the pair analogue of the triangle
  backends' ``candidate_triple_blocks``), each block's co-degrees are
  computed with one element-wise Beaver product over the gathered columns
  of ``A`` plus a local column sum, and the dealer's offline phase is
  pre-provisioned in one buffered draw per block.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.backends.base import CountResult
from repro.core.backends.registry import resolve_backend_name
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.protocol import TwoServerRuntime
from repro.crypto.ring import Ring
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_pair
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError
from repro.graph.graph import Graph
from repro.parallel import WorkerPool, resolve_workers
from repro.stats.base import SubgraphStatistic, validate_projected_rows
from repro.stats.registry import register_statistic
from repro.telemetry import resolve_telemetry
from repro.utils.rng import RandomState

__all__ = [
    "FourCycleStatistic",
    "candidate_pair_blocks",
    "count_four_cycles_exact",
    "four_cycle_sensitivity_bounded",
]


def count_four_cycles_exact(graph: Graph) -> int:
    """Exact number of 4-cycles via the co-degree (wedge-pair) identity.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> square = Graph(4, edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> count_four_cycles_exact(square)
    1
    >>> complete4 = Graph(4, edges=[(u, v) for u in range(4) for v in range(u + 1, 4)])
    >>> count_four_cycles_exact(complete4)
    3
    """
    n = graph.num_nodes
    if n < 4:
        return 0
    adjacency = graph.adjacency_matrix(copy=False)
    wedges = adjacency @ adjacency
    upper_j, upper_k = np.triu_indices(n, k=1)
    w = wedges[upper_j, upper_k]
    return int(np.sum(w * (w - 1))) // 4


def four_cycle_sensitivity_bounded(degree_bound: float) -> float:
    """Edge-DP 4-cycle sensitivity on a θ-bounded graph: ``(θ - 1)²``.

    A 4-cycle containing edge ``{u, v}`` is determined by one further
    neighbour of each endpoint, so one edge flip moves the count by at most
    ``(θ - 1)²``; clamped below at 1 so noise scales stay positive.
    """
    bound = max(float(degree_bound) - 1.0, 0.0)
    return max(bound * bound, 1.0)


def candidate_pair_blocks(
    num_users: int, batch_size: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Vectorised pair enumeration: ``(jj, kk)`` index-array blocks.

    The pair analogue of the triangle backends'
    :func:`~repro.core.backends.faithful.candidate_triple_blocks`: yields the
    lexicographic sequence of all ``j < k`` split into blocks of exactly
    *batch_size* pairs (the final block may be shorter).  The enumeration
    depends only on the public ``num_users``, so emitting it as arrays is
    security-neutral.

    Examples
    --------
    >>> [len(jj) for jj, kk in candidate_pair_blocks(4, 4)]
    [4, 2]
    """
    if batch_size <= 0:
        raise ProtocolError(f"batch_size must be positive, got {batch_size}")
    if num_users < 2:
        return
    jj_all, kk_all = np.triu_indices(num_users, k=1)
    for start in range(0, jj_all.shape[0], batch_size):
        yield jj_all[start : start + batch_size], kk_all[start : start + batch_size]


def _column_share_sum(ring: Ring, shares: np.ndarray) -> np.ndarray:
    """Sum a share matrix over its first axis inside the ring (a local op)."""
    total = np.sum(np.asarray(shares, dtype=ring.dtype), axis=0, dtype=np.uint64)
    if ring.bits == 64:
        return total
    return total & ring.dtype.type(ring.mask)


@register_statistic("4cycles")
class FourCycleStatistic(SubgraphStatistic):
    """4-cycle counting: ``#C4 = (1/4) sum_{u<v} w_uv (w_uv - 1)``.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> stat = FourCycleStatistic()
    >>> stat.plain_count(Graph(5, edges=[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]))
    1
    >>> stat.release_scale
    4
    """

    name = "4cycles"
    description = "number of 4-cycles (quadrilaterals)"
    #: The secure kernel computes ``S = 4 · #C4`` (ring division is not
    #: defined); the orchestrator divides after reconstruction.
    release_scale = 4

    @classmethod
    def from_config(cls, config) -> "FourCycleStatistic":
        """4-cycles take no parameters; *config* is accepted for uniformity."""
        return cls()

    def plain_count(self, graph: Graph) -> int:
        """Exact 4-cycle count of a clear graph."""
        return count_four_cycles_exact(graph)

    def projected_count(self, projected_rows: np.ndarray) -> int:
        """Plaintext evaluation under the mutual-consent edge convention."""
        rows = validate_projected_rows(projected_rows)
        n = rows.shape[0]
        if n < 4:
            return 0
        mutual = rows * rows.T
        wedges = mutual @ mutual
        upper_j, upper_k = np.triu_indices(n, k=1)
        w = wedges[upper_j, upper_k]
        return int(np.sum(w * (w - 1))) // 4

    # ------------------------------------------------------------------ #
    # Secure kernel
    # ------------------------------------------------------------------ #
    def secure_count(
        self,
        projected_rows: np.ndarray,
        config,
        share_rng: RandomState = None,
        dealer_rng: RandomState = None,
        views: Optional[ViewRecorder] = None,
        runtime: Optional[TwoServerRuntime] = None,
        authenticator=None,
    ) -> CountResult:
        """Secure evaluation of ``S = 4 · #C4`` on the users' uploaded shares.

        Users upload shares of their projected rows exactly as for the
        triangle kernel; the strategy the servers then follow is selected by
        the configured counting-backend name (see the module docstring).
        """
        from repro.core.backends import share_adjacency_rows

        ring: Ring = config.ring
        rows = validate_projected_rows(projected_rows)
        n = rows.shape[0]
        share1, share2 = share_adjacency_rows(rows, ring=ring, rng=share_rng)
        if runtime is not None:
            runtime.users_to_server(1, "adjacency_share", share1)
            runtime.users_to_server(2, "adjacency_share", share2)
        if n < 4:
            return CountResult(share1=0, share2=0, num_triples_processed=0, opening_rounds=0)

        dealer = BeaverTripleDealer(ring=ring, seed=dealer_rng)
        # Worker-count neutrality: with workers configured, the dealer's
        # Z = X @ Y products and the servers' local matrix products run as
        # row-striped pool matmuls.  Row strips are bit-identical to the
        # serial product and the dealing order is unchanged, so the
        # transcript is the same for every worker count (including none).
        workers = resolve_workers(config)
        matmul = None
        if workers:
            pool = WorkerPool(workers)
            matmul = pool.ring_matmul(ring)
            dealer.matmul = matmul
        tracer = resolve_telemetry(config).tracer
        backend = resolve_backend_name(getattr(config, "counting_backend", "matrix"))
        if backend in ("faithful", "batched"):
            batch = 1 if backend == "faithful" else int(getattr(config, "batch_size", 4096))
            with tracer.span(
                "backend",
                backend=backend,
                kernel="pair-stream",
                num_users=n,
                batch_size=batch,
                candidates=self.num_candidates(n),
            ) as span:
                result = self._count_pair_stream(
                    share1, share2, ring, dealer, batch, views,
                    authenticator=authenticator,
                )
                span.annotate(opening_rounds=result.opening_rounds)
            return result
        tile = int(getattr(config, "block_size", n)) if backend == "blocked" else n
        with tracer.span(
            "backend",
            backend=backend,
            kernel="matrix",
            num_users=n,
            block_size=tile,
            candidates=self.num_candidates(n),
        ) as span:
            result = self._count_matrix(
                share1, share2, ring, dealer, tile, views, matmul=matmul,
                authenticator=authenticator,
            )
            span.annotate(opening_rounds=result.opening_rounds)
        return result

    def _mutual_upper_shares(
        self, share1, share2, ring, dealer, tile, views, authenticator=None
    ):
        """Shares of the strict-upper mutual-edge matrix ``B_uv = â_uv · â_vu``.

        One element-wise Beaver product per tile (a single monolithic tile
        when *tile* covers the matrix): the left operand reads the bit the
        lower-indexed user holds, the right operand the transposed bit.
        """
        n = share1.shape[0]
        m1 = np.zeros((n, n), dtype=ring.dtype)
        m2 = np.zeros((n, n), dtype=ring.dtype)
        rounds = 0
        for r0 in range(0, n, tile):
            r1 = min(r0 + tile, n)
            for c0 in range(0, n, tile):
                c1 = min(c0 + tile, n)
                if r0 >= c1 - 1:
                    continue  # no u < v inside this tile (public index fact)
                mask = (
                    np.arange(r0, r1, dtype=np.int64)[:, None]
                    < np.arange(c0, c1, dtype=np.int64)[None, :]
                ).astype(ring.dtype)
                left = (
                    ring.mul(share1[r0:r1, c0:c1], mask),
                    ring.mul(share2[r0:r1, c0:c1], mask),
                )
                right = (
                    ring.mul(share1.T[r0:r1, c0:c1], mask),
                    ring.mul(share2.T[r0:r1, c0:c1], mask),
                )
                triple = dealer.vector_triple((r1 - r0, c1 - c0))
                m1[r0:r1, c0:c1], m2[r0:r1, c0:c1] = secure_multiply_pair(
                    left, right, triple, ring=ring, views=views,
                    authenticator=authenticator,
                )
                rounds += 1
        return m1, m2, rounds

    def _count_matrix(
        self, share1, share2, ring, dealer, tile, views, matmul=None, authenticator=None
    ) -> CountResult:
        """Matrix-formulation path: ``W = A @ A`` then ``W ⊙ (W - 1)`` upper-summed."""
        n = share1.shape[0]
        m1, m2, rounds = self._mutual_upper_shares(
            share1, share2, ring, dealer, tile, views, authenticator=authenticator
        )
        a1 = ring.add(m1, m1.T)
        a2 = ring.add(m2, m2.T)

        w1 = np.zeros((n, n), dtype=ring.dtype)
        w2 = np.zeros((n, n), dtype=ring.dtype)
        if tile >= n:
            triple = dealer.matrix_triple((n, n), (n, n))
            w1, w2 = secure_matrix_multiply(
                (a1, a2), (a1, a2), triple, ring=ring, views=views, matmul=matmul,
                authenticator=authenticator,
            )
            rounds += 1
        else:
            # Tiled A @ A: one small matrix triple per (J, I, K) tile, the
            # blocked triangle backend's streaming pattern (A is dense, so no
            # structurally-zero tiles to skip).
            edges = list(range(0, n, tile))
            for j0 in edges:
                j1 = min(j0 + tile, n)
                for k0 in edges:
                    k1 = min(k0 + tile, n)
                    acc1 = np.zeros((j1 - j0, k1 - k0), dtype=ring.dtype)
                    acc2 = np.zeros((j1 - j0, k1 - k0), dtype=ring.dtype)
                    for i0 in edges:
                        i1 = min(i0 + tile, n)
                        left = (
                            np.ascontiguousarray(a1[j0:j1, i0:i1]),
                            np.ascontiguousarray(a2[j0:j1, i0:i1]),
                        )
                        right = (
                            np.ascontiguousarray(a1[i0:i1, k0:k1]),
                            np.ascontiguousarray(a2[i0:i1, k0:k1]),
                        )
                        triple = dealer.matrix_triple((j1 - j0, i1 - i0), (i1 - i0, k1 - k0))
                        partial1, partial2 = secure_matrix_multiply(
                            left, right, triple, ring=ring, views=views, matmul=matmul,
                            authenticator=authenticator,
                        )
                        acc1 = ring.add(acc1, partial1)
                        acc2 = ring.add(acc2, partial2)
                        rounds += 1
                    w1[j0:j1, k0:k1] = acc1
                    w2[j0:j1, k0:k1] = acc2

        # Finish: shares of W ⊙ (W - 1) over the strict upper triangle (the
        # public constant 1 is subtracted from one server's share), tile by
        # tile so the element-wise triples follow the same memory bound.
        total1 = 0
        total2 = 0
        for r0 in range(0, n, tile):
            r1 = min(r0 + tile, n)
            for c0 in range(0, n, tile):
                c1 = min(c0 + tile, n)
                if r0 >= c1 - 1:
                    continue
                mask = (
                    np.arange(r0, r1, dtype=np.int64)[:, None]
                    < np.arange(c0, c1, dtype=np.int64)[None, :]
                ).astype(ring.dtype)
                wu1 = ring.mul(w1[r0:r1, c0:c1], mask)
                wu2 = ring.mul(w2[r0:r1, c0:c1], mask)
                wm1 = wu1
                wm2 = ring.mul(ring.sub(w2[r0:r1, c0:c1], 1), mask)
                triple = dealer.vector_triple((r1 - r0, c1 - c0))
                prod1, prod2 = secure_multiply_pair(
                    (wu1, wu2), (wm1, wm2), triple, ring=ring, views=views,
                    authenticator=authenticator,
                )
                total1 = ring.add(total1, ring.sum(prod1))
                total2 = ring.add(total2, ring.sum(prod2))
                rounds += 1
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=self.num_candidates(n),
            opening_rounds=rounds,
        )

    def _count_pair_stream(
        self, share1, share2, ring, dealer, batch, views, authenticator=None
    ) -> CountResult:
        """Wedge-pair path: per-pair co-degrees via block openings.

        For each block of candidate pairs the servers gather the paired
        columns of ``A``, multiply them element-wise with one Beaver product
        (shares of ``A_ij · A_ik`` for every middle vertex ``i``), sum the
        columns locally into co-degree shares, and finish the block with a
        second product for ``w (w - 1)``.  The dealer's offline phase for
        both products is pre-provisioned in a single buffered draw per
        block.
        """
        n = share1.shape[0]
        m1, m2, rounds = self._mutual_upper_shares(
            share1, share2, ring, dealer, n, views, authenticator=authenticator
        )
        a1 = ring.add(m1, m1.T)
        a2 = ring.add(m2, m2.T)

        total1 = 0
        total2 = 0
        pairs = 0
        for jj, kk in candidate_pair_blocks(n, batch):
            size = jj.shape[0]
            # Buffered offline phase: both triples of this block in one draw.
            if dealer.provisioned_vector_remaining == 0:
                dealer.provision_vector(n * size + size)
            left = (a1[:, jj], a2[:, jj])
            right = (a1[:, kk], a2[:, kk])
            triple = dealer.vector_triple((n, size))
            prod1, prod2 = secure_multiply_pair(
                left, right, triple, ring=ring, views=views,
                authenticator=authenticator,
            )
            w1 = _column_share_sum(ring, prod1)
            w2 = _column_share_sum(ring, prod2)
            pair_triple = dealer.vector_triple((size,))
            s1, s2 = secure_multiply_pair(
                (w1, w2), (w1, ring.sub(w2, 1)), pair_triple, ring=ring, views=views,
                authenticator=authenticator,
            )
            total1 = ring.add(total1, ring.sum(s1))
            total2 = ring.add(total2, ring.sum(s2))
            pairs += size
            rounds += 2
        return CountResult(
            share1=int(total1),
            share2=int(total2),
            num_triples_processed=pairs,
            opening_rounds=rounds,
        )

    # ------------------------------------------------------------------ #
    # Sensitivity and geometry
    # ------------------------------------------------------------------ #
    def statistic_sensitivity(self, degree_bound: float) -> float:
        """Edge-DP sensitivity ``(θ - 1)²`` after projection to θ."""
        return four_cycle_sensitivity_bounded(degree_bound)

    def node_sensitivity(self, degree_bound: float) -> float:
        """Node-DP bound ``C(θ, 2) · (θ - 1)``: neighbour pairs times closures."""
        bound = max(float(degree_bound), 0.0)
        return max(bound * (bound - 1.0) / 2.0 * max(bound - 1.0, 0.0), 1.0)

    def num_candidates(self, num_users: int) -> int:
        """``C(n, 2)`` wedge pairs — the co-degree geometry."""
        if num_users < 2:
            return 0
        return num_users * (num_users - 1) // 2
