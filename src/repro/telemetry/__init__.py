"""Protocol telemetry: hierarchical spans, metrics, and run manifests.

The package has three accumulation surfaces and three exports:

* :class:`Tracer` / :class:`Span` — the hierarchical span tree
  (run → phase → backend step / tile group / stream anchor), thread-safe
  under the worker pool via the same shard-merge discipline as
  :class:`~repro.crypto.views.ViewRecorder`;
* :class:`MetricsRegistry` — labelled counters/gauges/histograms fed by the
  protocol (bytes and messages per phase, triples dealt, store hit/miss,
  opening rounds, ε per ledger entry, stream events and anchor latency);
* :class:`Telemetry` — the per-run bundle configs carry
  (``CargoConfig(telemetry=Telemetry())``), off by default;
* exporters — JSON run manifest (:func:`write_trace`), Prometheus text
  (:func:`write_metrics`), and the per-phase summary table attached to
  ``CargoResult.telemetry``.

Telemetry never perturbs a transcript: outputs, ledgers, and recorded
views are bit-identical with telemetry on or off, and the disabled path
(the default) is a handful of attribute checks.
"""

from repro.telemetry.exporters import (
    build_result_telemetry,
    format_phase_table,
    phase_rows,
    summary_block,
    to_prometheus_text,
    write_metrics,
    write_trace,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    validate_manifest,
    verify_ledger_reconciliation,
)
from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.profiling import measure_peak_bytes, traced_call
from repro.telemetry.session import NULL_TELEMETRY, Telemetry, resolve_telemetry
from repro.telemetry.spans import NULL_TRACER, Span, Tracer
from repro.telemetry.timers import Timer, TimerRegistry

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "Span",
    "Telemetry",
    "Timer",
    "TimerRegistry",
    "Tracer",
    "build_manifest",
    "build_result_telemetry",
    "format_phase_table",
    "measure_peak_bytes",
    "phase_rows",
    "resolve_telemetry",
    "summary_block",
    "to_prometheus_text",
    "traced_call",
    "validate_manifest",
    "verify_ledger_reconciliation",
    "write_metrics",
    "write_trace",
]
