"""Hierarchical spans: the tracing half of the telemetry layer.

A :class:`Tracer` records a tree of :class:`Span` objects — run → phase →
backend step / tile group / stream anchor — each carrying wall-clock
seconds, free-form attributes, counter increments, and (when ``tracemalloc``
is already tracing) the traced-allocation delta across the span.

Concurrency follows the same shard-merge discipline as
:class:`~repro.crypto.views.ViewRecorder`: worker threads never touch the
parent tracer directly.  Each unit of work records into a private shard
(:meth:`Tracer.shard`) and the coordinator merges the shards back in
canonical schedule order (:meth:`Tracer.merge_shard`), so the resulting
tree is bit-identical for any worker count.

A disabled tracer (``Tracer(enabled=False)``, or the shared
:data:`NULL_TRACER`) is a true no-op: ``span()`` hands back one shared,
stateless context manager, so instrumented code pays one attribute check
and nothing else.

Examples
--------
>>> tracer = Tracer()
>>> with tracer.span("total"):
...     with tracer.span("count", backend="matrix") as span:
...         span.add("opening_rounds", 2)
>>> [root.name for root in tracer.roots]
['total']
>>> tracer.roots[0].children[0].attributes["backend"]
'matrix'
>>> sorted(tracer.roots[0].timings())
['count', 'total']
>>> NULL_TRACER.roots
[]
"""

from __future__ import annotations

import contextlib
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One node of the trace tree.

    ``seconds`` is the wall-clock duration of the span;
    ``memory_delta_bytes`` is the traced-allocation delta across it (only
    populated when ``tracemalloc`` was tracing while the span ran, e.g.
    inside :func:`repro.telemetry.profiling.traced_call`).
    """

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    seconds: float = 0.0
    memory_delta_bytes: Optional[int] = None
    children: List["Span"] = field(default_factory=list)

    def add(self, name: str, value: float = 1) -> None:
        """Increment the counter attribute *name* by *value*."""
        self.attributes[name] = self.attributes.get(name, 0) + value

    def annotate(self, **attributes: object) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def timings(self) -> Dict[str, float]:
        """Seconds aggregated by span name over this span and descendants."""
        totals: Dict[str, float] = {}

        def visit(span: "Span") -> None:
            totals[span.name] = totals.get(span.name, 0.0) + span.seconds
            for child in span.children:
                visit(child)

        visit(self)
        return totals

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready recursive form (the trace section of the manifest)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "attributes": dict(self.attributes),
            "seconds": self.seconds,
        }
        if self.memory_delta_bytes is not None:
            payload["memory_delta_bytes"] = self.memory_delta_bytes
        payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def structure(self) -> Dict[str, object]:
        """The deterministic part of the span tree.

        Names, attributes, and children — everything except wall-clock
        seconds and memory deltas, which vary run to run.  Two runs that
        executed the same schedule compare equal under ``structure()``
        regardless of host speed or worker count.
        """
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "children": [child.structure() for child in self.children],
        }


class _NullSpan:
    """Shared stateless stand-in yielded by a disabled tracer's spans."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, object] = {}
    children: List[Span] = []
    seconds = 0.0
    memory_delta_bytes = None

    def add(self, name: str, value: float = 1) -> None:
        pass

    def annotate(self, **attributes: object) -> None:
        pass

    def timings(self) -> Dict[str, float]:
        return {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Produces the span tree for one run (or one worker shard of it).

    Span stacks are thread-local, so a tracer is safe to *hold* across
    threads — but spans opened on different threads never nest into each
    other.  Parallel sections instead record into per-unit shards
    (:meth:`shard`) that the coordinating thread merges back in canonical
    order (:meth:`merge_shard`), mirroring ``ViewRecorder.merge_from``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._roots: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attributes: object):
        """Context manager opening a child span of the current span."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return self._record(name, attributes)

    @contextlib.contextmanager
    def _record(self, name: str, attributes: Dict[str, object]) -> Iterator[Span]:
        span = Span(name=name, attributes=dict(attributes))
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)
        tracing = tracemalloc.is_tracing()
        memory_before = tracemalloc.get_traced_memory()[0] if tracing else 0
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.seconds += time.perf_counter() - started
            if tracing and tracemalloc.is_tracing():
                span.memory_delta_bytes = (
                    tracemalloc.get_traced_memory()[0] - memory_before
                )
            stack.pop()

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------ #
    # Shard-merge discipline (parallel sections)
    # ------------------------------------------------------------------ #
    def shard(self) -> "Tracer":
        """A private tracer for one unit of parallel work.

        Workers record into their shard; the coordinator merges the shards
        back in canonical schedule order, so the final tree is independent
        of worker count and completion order.
        """
        if not self.enabled:
            return NULL_TRACER
        return Tracer()

    def merge_shard(self, shard: Optional["Tracer"]) -> None:
        """Attach *shard*'s roots under the current span, in shard order."""
        if not self.enabled or shard is None or not shard.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].children.extend(shard.roots)
        else:
            with self._lock:
                self._roots.extend(shard.roots)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @property
    def roots(self) -> List[Span]:
        """Completed top-level spans, in start order."""
        with self._lock:
            return list(self._roots)

    def timings(self) -> Dict[str, float]:
        """Seconds aggregated by span name over the whole tree."""
        totals: Dict[str, float] = {}
        for root in self.roots:
            for name, seconds in root.timings().items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def structure(self) -> List[Dict[str, object]]:
        """Deterministic tree (no seconds/memory) — see :meth:`Span.structure`."""
        return [root.structure() for root in self.roots]

    def to_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready list of root span trees."""
        return [root.to_dict() for root in self.roots]

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack


#: Shared disabled tracer: every ``span()`` is the same stateless no-op.
NULL_TRACER = Tracer(enabled=False)
_NULL_SPAN_CONTEXT = contextlib.nullcontext(_NULL_SPAN)
