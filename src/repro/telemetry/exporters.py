"""Exporters: JSON trace manifest, Prometheus text, and summary tables.

Three consumption formats for one run's telemetry:

* :func:`write_trace` — the schema-versioned JSON run manifest
  (see :mod:`repro.telemetry.manifest`) for machine consumption;
* :func:`to_prometheus_text` / :func:`write_metrics` — the metric registry
  in the Prometheus text exposition format, ready for a file-based scrape;
* :func:`format_phase_table` / :func:`build_result_telemetry` — the
  human-readable per-phase summary attached to ``CargoResult.telemetry``.

Examples
--------
>>> from repro.telemetry.metrics import MetricsRegistry
>>> metrics = MetricsRegistry()
>>> metrics.increment("comm_bytes", 96, phase="count")
>>> print(to_prometheus_text(metrics))
# TYPE comm_bytes counter
comm_bytes{phase="count"} 96
<BLANKLINE>
>>> rows = [{"phase": "count", "seconds": 0.5, "bytes": 96, "messages": 2}]
>>> print(format_phase_table(rows))  # doctest: +NORMALIZE_WHITESPACE
phase         seconds        bytes   messages
count        0.500000           96          2
total        0.500000           96          2
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.telemetry.manifest import build_manifest
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.session import Telemetry
from repro.utils.atomic import atomic_write_text

#: Canonical phase order for the per-phase summary table.
PHASE_ORDER = ("max", "project", "count", "perturb", "anchor", "release")


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:g}"
    return str(int(value))


def to_prometheus_text(metrics: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []

    def emit(series: Dict[str, float], kind: str) -> None:
        seen = set()
        for name, value in series.items():
            bare = name.split("{", 1)[0]
            if bare not in seen:
                seen.add(bare)
                lines.append(f"# TYPE {bare} {kind}")
            lines.append(f"{name} {_format_value(value)}")

    emit(metrics.counters(), "counter")
    emit(metrics.gauges(), "gauge")
    seen = set()
    for name, stats in metrics.histograms().items():
        bare, brace, labels = name.partition("{")
        suffix = brace + labels
        if bare not in seen:
            seen.add(bare)
            lines.append(f"# TYPE {bare} summary")
        lines.append(f"{bare}_count{suffix} {_format_value(stats['count'])}")
        lines.append(f"{bare}_sum{suffix} {stats['sum']:g}")
        lines.append(f"{bare}_min{suffix} {stats['min']:g}")
        lines.append(f"{bare}_max{suffix} {stats['max']:g}")
    return "\n".join(lines) + "\n"


def write_metrics(metrics: MetricsRegistry, path) -> Path:
    """Write the Prometheus text export to *path* and return it.

    The write is atomic (write-then-rename): a crash mid-export never
    leaves a truncated metrics file behind.
    """
    target = Path(path)
    atomic_write_text(target, to_prometheus_text(metrics))
    return target


def write_trace(telemetry: Telemetry, path, **context) -> Dict:
    """Write the JSON run manifest to *path* atomically; returns the dict."""
    manifest = build_manifest(telemetry, **context)
    target = Path(path)
    atomic_write_text(target, json.dumps(manifest, indent=2) + "\n")
    return manifest


def format_phase_table(rows: List[Dict]) -> str:
    """Aligned per-phase summary table (seconds / bytes / messages)."""
    header = f"{'phase':<10s} {'seconds':>12s} {'bytes':>12s} {'messages':>10s}"
    lines = [header]
    totals = {"seconds": 0.0, "bytes": 0, "messages": 0}
    for row in rows:
        lines.append(
            f"{row['phase']:<10s} {row['seconds']:>12.6f} "
            f"{row['bytes']:>12d} {row['messages']:>10d}"
        )
        totals["seconds"] += row["seconds"]
        totals["bytes"] += row["bytes"]
        totals["messages"] += row["messages"]
    lines.append(
        f"{'total':<10s} {totals['seconds']:>12.6f} "
        f"{totals['bytes']:>12d} {totals['messages']:>10d}"
    )
    return "\n".join(lines)


def phase_rows(
    timings: Dict[str, float], communication_phases: Dict[str, Dict[str, int]]
) -> List[Dict]:
    """Join phase timings with the ledger's per-phase byte/message totals.

    Phases appear in :data:`PHASE_ORDER` first, then any remaining timed or
    ledgered names in sorted order; the synthetic ``total`` timing key is
    excluded (the table prints its own total line).
    """
    names = [name for name in PHASE_ORDER if name in timings or name in communication_phases]
    extras = sorted(
        (set(timings) | set(communication_phases)) - set(names) - {"total"}
    )
    rows = []
    for name in names + extras:
        comm = communication_phases.get(name, {})
        rows.append(
            {
                "phase": name,
                "seconds": float(timings.get(name, 0.0)),
                "bytes": int(comm.get("bytes", 0)),
                "messages": int(comm.get("messages", 0)),
            }
        )
    return rows


def build_result_telemetry(
    timings: Dict[str, float],
    communication_phases: Dict[str, Dict[str, int]],
    *,
    opening_rounds: Optional[int] = None,
    candidates: Optional[int] = None,
    triple_store_stats: Optional[Dict] = None,
) -> Dict:
    """The ``CargoResult.telemetry`` block: rows + rendered summary table."""
    rows = phase_rows(timings, communication_phases)
    block: Dict[str, object] = {
        "phases": rows,
        "summary": format_phase_table(rows),
    }
    if opening_rounds is not None:
        block["opening_rounds"] = opening_rounds
    if candidates is not None:
        block["candidates"] = candidates
    if triple_store_stats is not None:
        block["triple_store"] = dict(triple_store_stats)
    return block


def summary_block(telemetry: Telemetry, triple_store=None) -> Dict:
    """The ``--json`` telemetry block: metric snapshot + release records."""
    block: Dict[str, object] = {
        "enabled": telemetry.enabled,
        "releases": telemetry.releases,
        "metrics": telemetry.metrics.as_dict(),
    }
    if triple_store is not None:
        block["triple_store"] = triple_store.stats()
    return block
