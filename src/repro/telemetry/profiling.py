"""Shared wall-clock + peak-memory measurement for benchmarks.

``tracemalloc`` instruments every allocation, which slows Python-loop-heavy
code noticeably — so peak-memory numbers are always taken in a *separate*
pass from the wall-clock timings, never mixed into a timed repetition.
Every benchmark's ``peak_bytes``/``seconds_traced`` fields come from this
one code path (``benchmarks/memprof.py`` is now a shim over it).

While :func:`traced_call` is tracing, any telemetry spans opened inside the
callable pick up their ``memory_delta_bytes`` attribute for free — the
:class:`~repro.telemetry.spans.Tracer` reads the active tracemalloc stream
rather than starting its own.

Examples
--------
>>> result, seconds, peak = traced_call(lambda: [0] * 1000)
>>> (len(result), seconds >= 0.0, peak > 0)
(1000, True, True)
>>> measure_peak_bytes(lambda: bytearray(1 << 16)) >= (1 << 16)
True
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from typing import Any, Tuple


def traced_call(callable_) -> Tuple[Any, float, int]:
    """``(result, seconds, peak_bytes)`` of one tracemalloc-instrumented call.

    Collects garbage first so leftover cycles from earlier work don't count
    against the callable, then traces exactly one invocation.  Only
    allocations made while tracing count, so callers decide what the peak
    covers by what they build inside the callable (e.g. start tracing after
    the secret shares exist to isolate a backend's working memory).
    """
    gc.collect()
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = callable_()
        seconds = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, seconds, int(peak)


def measure_peak_bytes(callable_) -> int:
    """Peak traced allocation (bytes) across one call of *callable_*."""
    return traced_call(callable_)[2]
