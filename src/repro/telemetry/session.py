"""The per-run telemetry bundle and its config-level resolution.

A :class:`Telemetry` object travels through a run on
``CargoConfig.telemetry`` / ``StreamingConfig.telemetry`` and bundles the
three accumulation surfaces:

* ``tracer`` — the hierarchical span tree (:class:`~repro.telemetry.spans.Tracer`),
* ``metrics`` — the counters/gauges/histograms registry
  (:class:`~repro.telemetry.metrics.MetricsRegistry`),
* ``releases`` — one structured record per protocol release
  (:meth:`record_release`), from which the run manifest is built.

Configs default to ``telemetry=None`` (telemetry off); instrumented code
calls :func:`resolve_telemetry` and receives the shared no-op
:data:`NULL_TELEMETRY` bundle, whose tracer and registry ignore every call.
Because instrumentation never branches on anything but ``enabled``, a
traced run executes the exact same protocol schedule as an untraced one —
outputs, ledgers, and views stay bit-identical.

Examples
--------
>>> telemetry = Telemetry()
>>> telemetry.enabled
True
>>> telemetry.record_release({"statistic": "triangles"})
>>> telemetry.releases[0]["statistic"]
'triangles'
>>> resolve_telemetry(object()) is NULL_TELEMETRY
True
>>> Telemetry.disabled().enabled
False
"""

from __future__ import annotations

import threading
from typing import Dict, List

from repro.telemetry.metrics import NULL_METRICS, MetricsRegistry
from repro.telemetry.spans import NULL_TRACER, Tracer


class Telemetry:
    """One run's (or one sweep's) telemetry accumulation surfaces."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer() if enabled else NULL_TRACER
        self.metrics = MetricsRegistry() if enabled else NULL_METRICS
        self._releases: List[Dict] = []
        self._lock = threading.Lock()

    def record_release(self, entry: Dict) -> None:
        """Append one release record (becomes a manifest ``releases`` row)."""
        if not self.enabled:
            return
        with self._lock:
            self._releases.append(entry)

    @property
    def releases(self) -> List[Dict]:
        """All release records so far, in recording order."""
        with self._lock:
            return list(self._releases)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared no-op bundle (also what ``telemetry=None`` resolves to)."""
        return NULL_TELEMETRY


#: Shared no-op bundle handed out for configs without telemetry.
NULL_TELEMETRY = Telemetry(enabled=False)


def resolve_telemetry(config) -> Telemetry:
    """The config's telemetry bundle, or :data:`NULL_TELEMETRY` when unset.

    Duck-typed like every other engine knob: any object lacking a
    ``telemetry`` attribute (or carrying ``None``) gets the no-op bundle.
    """
    telemetry = getattr(config, "telemetry", None)
    return telemetry if telemetry is not None else NULL_TELEMETRY
