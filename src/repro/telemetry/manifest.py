"""Schema-versioned run manifests: build, validate, reconcile.

A *run manifest* is the structured JSON export of one traced run: the
release records, the metric snapshot, and the span tree, under a pinned
``schema_version``.  The CI ``telemetry-smoke`` job round-trips a manifest
per backend through :func:`validate_manifest` and
:func:`verify_ledger_reconciliation`, so the schema here is load-bearing —
bump :data:`MANIFEST_SCHEMA_VERSION` on any breaking field change.

Validation is hand-rolled (no ``jsonschema`` dependency in the image): it
walks the documented shape and returns a list of human-readable problems,
empty when the manifest is valid.

Examples
--------
>>> from repro.telemetry.session import Telemetry
>>> telemetry = Telemetry()
>>> telemetry.metrics.increment("comm_bytes", 8, phase="max")
>>> telemetry.metrics.increment("comm_messages", 1, phase="max")
>>> telemetry.record_release({
...     "kind": "cargo", "statistic": "triangles", "backend": "matrix",
...     "noisy_count": 1.0, "true_count": 1.0,
...     "communication_phases": {"max": {"bytes": 8, "messages": 1}},
... })
>>> manifest = build_manifest(telemetry)
>>> manifest["schema_version"]
1
>>> validate_manifest(manifest)
[]
>>> verify_ledger_reconciliation(manifest)
[]
"""

from __future__ import annotations

from typing import Dict, List

from repro.telemetry.session import Telemetry

#: Bump on any breaking change to the manifest layout.
MANIFEST_SCHEMA_VERSION = 1

MANIFEST_KIND = "repro-run-manifest"

#: Keys every release record must carry (further keys are free-form).
_RELEASE_REQUIRED = ("kind", "statistic", "backend", "noisy_count")

#: A detected cheat aborts the release, so its record carries the failed
#: round instead of a count — same schema version, different required keys.
_CHEATER_REQUIRED = ("kind", "statistic", "backend", "round_index", "label")


def build_manifest(telemetry: Telemetry, **context) -> Dict:
    """Assemble the manifest for everything *telemetry* accumulated.

    Extra keyword arguments land in the manifest's ``context`` block —
    the CLI records the experiment name and arguments there.
    """
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "context": dict(context),
        "releases": telemetry.releases,
        "metrics": telemetry.metrics.as_dict(),
        "trace": telemetry.tracer.to_dicts(),
    }


def _check_span(span, path: str, problems: List[str]) -> None:
    if not isinstance(span, dict):
        problems.append(f"{path}: span is not an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        problems.append(f"{path}: span name missing or not a string")
    if not isinstance(span.get("attributes"), dict):
        problems.append(f"{path}: span attributes missing or not an object")
    if not isinstance(span.get("seconds"), (int, float)):
        problems.append(f"{path}: span seconds missing or not a number")
    children = span.get("children")
    if not isinstance(children, list):
        problems.append(f"{path}: span children missing or not a list")
        return
    for index, child in enumerate(children):
        _check_span(child, f"{path}.children[{index}]", problems)


def _check_phase_map(phases, path: str, problems: List[str]) -> None:
    if not isinstance(phases, dict):
        problems.append(f"{path}: not an object")
        return
    for phase, stats in phases.items():
        if not isinstance(stats, dict):
            problems.append(f"{path}[{phase!r}]: not an object")
            continue
        for field in ("bytes", "messages"):
            if not isinstance(stats.get(field), int):
                problems.append(f"{path}[{phase!r}].{field}: missing or not an int")


def validate_manifest(manifest) -> List[str]:
    """All schema violations in *manifest* (empty list ⇒ valid)."""
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not an object"]
    if manifest.get("schema_version") != MANIFEST_SCHEMA_VERSION:
        problems.append(
            f"schema_version: expected {MANIFEST_SCHEMA_VERSION}, "
            f"got {manifest.get('schema_version')!r}"
        )
    if manifest.get("kind") != MANIFEST_KIND:
        problems.append(f"kind: expected {MANIFEST_KIND!r}, got {manifest.get('kind')!r}")
    if not isinstance(manifest.get("context"), dict):
        problems.append("context: missing or not an object")

    releases = manifest.get("releases")
    if not isinstance(releases, list):
        problems.append("releases: missing or not a list")
        releases = []
    for index, release in enumerate(releases):
        path = f"releases[{index}]"
        if not isinstance(release, dict):
            problems.append(f"{path}: not an object")
            continue
        if release.get("kind") == "cheater_detected":
            for key in _CHEATER_REQUIRED:
                if key not in release:
                    problems.append(f"{path}.{key}: missing")
            if "round_index" in release and not isinstance(
                release["round_index"], int
            ):
                problems.append(f"{path}.round_index: not an int")
            continue
        for key in _RELEASE_REQUIRED:
            if key not in release:
                problems.append(f"{path}.{key}: missing")
        if "noisy_count" in release and not isinstance(
            release["noisy_count"], (int, float)
        ):
            problems.append(f"{path}.noisy_count: not a number")
        if "communication_phases" in release:
            _check_phase_map(
                release["communication_phases"], f"{path}.communication_phases", problems
            )

    metrics = manifest.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("metrics: missing or not an object")
    else:
        for family in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(family), dict):
                problems.append(f"metrics.{family}: missing or not an object")

    trace = manifest.get("trace")
    if not isinstance(trace, list):
        problems.append("trace: missing or not a list")
    else:
        for index, span in enumerate(trace):
            _check_span(span, f"trace[{index}]", problems)
    return problems


def verify_ledger_reconciliation(manifest) -> List[str]:
    """Cross-check per-phase bytes/messages against the metric counters.

    Every release record carries the ``CommunicationLedger`` phase summary
    it was built from, and the run also feeds the same summary into the
    ``comm_bytes``/``comm_messages`` counters.  Summing the release-side
    numbers per phase must reproduce the counters **exactly** — any drift
    means a phase was double-counted or dropped.  Returns the list of
    mismatches (empty ⇒ reconciled).
    """
    problems: List[str] = []
    if not isinstance(manifest, dict):
        return ["manifest is not an object"]
    totals: Dict[str, Dict[str, int]] = {}
    for release in manifest.get("releases", []):
        for phase, stats in (release.get("communication_phases") or {}).items():
            entry = totals.setdefault(phase, {"bytes": 0, "messages": 0})
            entry["bytes"] += stats.get("bytes", 0)
            entry["messages"] += stats.get("messages", 0)
    counters = (manifest.get("metrics") or {}).get("counters") or {}
    for family, unit in (("comm_bytes", "bytes"), ("comm_messages", "messages")):
        counted = {
            series: value
            for series, value in counters.items()
            if series.startswith(f'{family}{{phase="')
        }
        expected = {
            f'{family}{{phase="{phase}"}}': stats[unit]
            for phase, stats in totals.items()
        }
        for series, value in sorted(expected.items()):
            if counters.get(series) != value:
                problems.append(
                    f"{series}: releases total {value}, counter {counters.get(series)!r}"
                )
        for series in sorted(set(counted) - set(expected)):
            problems.append(f"{series}: counter present but no release accounts for it")
    return problems
