"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the aggregate half of the telemetry layer (spans are the
tree half).  Subsystems feed it monotonic **counters** (triples dealt,
bytes per phase, ε spent), point-in-time **gauges** (triple-store entries,
resident cache bytes), and **histograms** (anchor latency) — each series
keyed by a metric name plus a sorted label set, Prometheus-style.

All mutation is lock-serialised, and counters/gauges are commutative, so
feeding the registry from parallel sweep trials is safe and deterministic.
A disabled registry (:data:`NULL_METRICS`) ignores every call.

Examples
--------
>>> metrics = MetricsRegistry()
>>> metrics.increment("comm_bytes", 96, phase="count")
>>> metrics.increment("comm_bytes", 4, phase="count")
>>> metrics.counters()['comm_bytes{phase="count"}']
100
>>> metrics.gauge_set("store_entries", 3)
>>> metrics.observe("anchor_seconds", 0.25)
>>> metrics.histograms()["anchor_seconds"]["count"]
1
>>> NULL_METRICS.increment("ignored")
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

#: A series key: metric name plus the sorted label items.
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def format_series(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Prometheus-style series name: ``name{key="value",...}``.

    >>> format_series("comm_bytes", (("phase", "max"),))
    'comm_bytes{phase="max"}'
    >>> format_series("runs", ())
    'runs'
    """
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe named counters, gauges, and histograms."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, float] = {}
        self._histograms: Dict[SeriesKey, Dict[str, float]] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> SeriesKey:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def increment(self, name: str, value: float = 1, **labels: object) -> None:
        """Add *value* to the counter series ``name{labels}``."""
        if not self.enabled:
            return
        key = self._key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series ``name{labels}`` to *value*."""
        if not self.enabled:
            return
        key = self._key(name, labels)
        with self._lock:
            self._gauges[key] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        if not self.enabled:
            return
        key = self._key(name, labels)
        with self._lock:
            stats = self._histograms.get(key)
            if stats is None:
                self._histograms[key] = {
                    "count": 1,
                    "sum": value,
                    "min": value,
                    "max": value,
                }
            else:
                stats["count"] += 1
                stats["sum"] += value
                stats["min"] = min(stats["min"], value)
                stats["max"] = max(stats["max"], value)

    # ------------------------------------------------------------------ #
    # Reading (all snapshots are sorted → deterministic exports)
    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, float]:
        """Counter snapshot keyed by formatted series name."""
        with self._lock:
            items = sorted(self._counters.items())
        return {format_series(name, labels): value for (name, labels), value in items}

    def gauges(self) -> Dict[str, float]:
        """Gauge snapshot keyed by formatted series name."""
        with self._lock:
            items = sorted(self._gauges.items())
        return {format_series(name, labels): value for (name, labels), value in items}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        """Histogram snapshot (count/sum/min/max per series)."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {
            format_series(name, labels): dict(stats)
            for (name, labels), stats in items
        }

    def as_dict(self) -> Dict[str, Dict]:
        """All three families, ready for the JSON manifest."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0 if never incremented)."""
        with self._lock:
            return self._counters.get(self._key(name, labels), 0)


#: Shared disabled registry: every recording call returns immediately.
NULL_METRICS = MetricsRegistry(enabled=False)
