"""Lightweight wall-clock timing for the running-time experiments.

The paper's Figures 11 and 12 break CARGO's running time down by phase (most
of the cost is the secure ``Count`` step).  :class:`TimerRegistry` lets the
protocol record named phase timings without importing any experiment code.

This module lives in the telemetry layer; ``repro.utils.timer`` remains as
a backwards-compatible re-export shim.  New code that wants hierarchy,
attributes, or memory deltas should use :class:`repro.telemetry.Tracer`
instead — flat named timers stay around for the baselines, whose phase
breakdown is one level deep.

Examples
--------
>>> registry = TimerRegistry()
>>> with registry.measure("count") as timer:
...     _ = sum(range(10))
>>> timer.calls
1
>>> sorted(registry.as_dict()) == ["count"] and registry.seconds("count") >= 0.0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional
from contextlib import contextmanager


@dataclass
class Timer:
    """Accumulating wall-clock timer for a single named phase."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> None:
        """Begin a timing interval; nested starts are a programming error."""
        if self._started_at is not None:
            raise RuntimeError(f"timer {self.name!r} is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current interval and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError(f"timer {self.name!r} is not running")
        elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        self.total_seconds += elapsed
        self.calls += 1
        return elapsed

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager form of :meth:`start` / :meth:`stop`."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    Protocol code asks for ``registry.timer("count")`` and wraps the phase in
    ``with timer.measure():``; experiments read ``registry.as_dict()`` to get
    the per-phase seconds that feed the running-time figures.
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def timer(self, name: str) -> Timer:
        """Return the timer registered under *name*, creating it if needed."""
        if name not in self._timers:
            self._timers[name] = Timer(name)
        return self._timers[name]

    @contextmanager
    def measure(self, name: str) -> Iterator[Timer]:
        """Shorthand for ``registry.timer(name).measure()``."""
        with self.timer(name).measure() as timer:
            yield timer

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under *name* (0.0 if never used)."""
        timer = self._timers.get(name)
        return timer.total_seconds if timer is not None else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all phase totals, keyed by phase name."""
        return {name: timer.total_seconds for name, timer in self._timers.items()}

    def reset(self) -> None:
        """Drop every timer (used between repeated experiment trials)."""
        self._timers.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def __len__(self) -> int:
        return len(self._timers)
