"""Generalised-statistic accuracy experiment (extension beyond the paper).

The paper evaluates triangle counting only; the statistic registry opens the
same pipeline to every registered subgraph statistic.  This experiment sweeps
the privacy budget for a set of statistics on one dataset and reports, per
(statistic, ε) cell, the mean l2 loss and relative error of the private
release against the brute-force ground truth — the utility trajectory that
shows each statistic's estimate converging as ε grows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.experiments.runner import ExperimentReport
from repro.graph.datasets import load_dataset
from repro.metrics.aggregate import aggregate_trials
from repro.metrics.error import l2_loss, relative_error
from repro.utils.rng import stable_seed_from_name

#: Statistics swept when the caller does not restrict to one.
DEFAULT_STATISTICS = ("triangles", "kstars", "4cycles")


def statistics_accuracy(
    dataset: str = "facebook",
    num_nodes: int = 120,
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    statistics: Sequence[str] = DEFAULT_STATISTICS,
    statistic: Optional[str] = None,
    star_k: int = 2,
    num_trials: int = 3,
    seed: int = 0,
    counting_backend: Optional[str] = None,
) -> ExperimentReport:
    """Accuracy of every registered statistic across a privacy-budget sweep.

    One report row per (statistic, ε) cell, averaged over *num_trials*
    independent protocol runs with deterministic per-cell seeds.  Passing
    *statistic* restricts the sweep to a single statistic (the CLI's
    ``--statistic`` override).
    """
    graph = load_dataset(dataset, num_nodes=num_nodes)
    names = (statistic,) if statistic is not None else tuple(statistics)
    report = ExperimentReport(
        name="stats",
        description=(
            f"private subgraph statistics on {dataset} "
            f"(n={num_nodes}, trials={num_trials})"
        ),
        columns=[
            "statistic",
            "epsilon",
            "true_count",
            "mean_estimate",
            "l2_loss",
            "relative_error",
        ],
    )
    for name in names:
        for epsilon in epsilons:
            estimates = []
            errors = []
            losses = []
            true_count = None
            for trial in range(num_trials):
                # Deterministic, order-independent per-cell seed (the
                # ProtocolSweep convention).
                cell_seed = stable_seed_from_name(
                    f"stats|{name}|eps={float(epsilon)!r}|trial={trial}",
                    base_seed=seed,
                ) % (1 << 31)
                config = CargoConfig(
                    epsilon=float(epsilon),
                    seed=cell_seed,
                    statistic=name,
                    star_k=star_k,
                    **(
                        {}
                        if counting_backend is None
                        else {"counting_backend": counting_backend}
                    ),
                )
                result = Cargo(config).run(graph)
                true_count = result.true_count
                estimates.append(result.noisy_count)
                losses.append(l2_loss(result.true_count, result.noisy_count))
                if result.true_count:
                    errors.append(relative_error(result.true_count, result.noisy_count))
            report.add_row(
                statistic=name,
                epsilon=float(epsilon),
                true_count=true_count,
                mean_estimate=round(aggregate_trials(estimates).mean, 3),
                l2_loss=round(aggregate_trials(losses).mean, 3),
                relative_error=(
                    round(aggregate_trials(errors).mean, 6) if errors else None
                ),
            )
    return report
