"""Experiment harness: regenerate every table and figure in the paper.

Each experiment function returns an :class:`~repro.experiments.runner.ExperimentReport`
whose rows mirror the series shown in the corresponding paper artefact, and
also renders as a plain-text table.  The registry in
:mod:`repro.experiments.specs` maps paper artefact names (``table3``,
``fig5`` …) to the functions, and :mod:`repro.cli` exposes them on the
command line.
"""

from repro.experiments.runner import ExperimentReport, ProtocolSweep, run_protocol_trials
from repro.experiments.reporting import format_table
from repro.experiments.specs import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments import figures, tables

__all__ = [
    "ExperimentReport",
    "ProtocolSweep",
    "run_protocol_trials",
    "format_table",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "figures",
    "tables",
]
