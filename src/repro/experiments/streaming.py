"""Streaming-accuracy-over-time experiment (extension beyond the paper).

The paper evaluates one-shot accuracy on frozen graphs; this experiment
replays a dataset as a randomized edge-arrival stream and tracks how the
continual-release estimate follows the growing true count.  Per release it
reports the error columns used throughout :mod:`repro.metrics` (l2 loss and
relative error) plus the cumulative privacy spend, so the accuracy-vs-time
trajectory and the O(log T) budget behaviour are visible in one table.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import ExperimentError
from repro.experiments.runner import ExperimentReport
from repro.graph.datasets import load_dataset
from repro.metrics.error import l2_loss, relative_error
from repro.stream.events import replay_stream
from repro.stream.orchestrator import StreamingCargo, StreamingConfig
from repro.stream.release import tree_depth


def streaming_accuracy_over_time(
    dataset: str = "facebook",
    num_nodes: int = 150,
    epsilon: float = 4.0,
    release_every: int = 50,
    anchor_every: int = 0,
    counting_backend: Optional[str] = None,
    statistic: Optional[str] = None,
    star_k: Optional[int] = None,
    workers: Optional[int] = None,
    seed: int = 0,
    telemetry: Optional[object] = None,
    resilience: Optional[object] = None,
) -> ExperimentReport:
    """Continual-release accuracy as a dataset's edges arrive over time.

    The dataset's edges arrive in a seed-randomized order; the streaming
    orchestrator publishes a DP estimate every *release_every* events (with a
    secure anchor every *anchor_every* releases when non-zero).  One report
    row per release.  A :class:`~repro.resilience.ResilienceConfig` passed as
    *resilience* engages retries, checkpointing, and resume — a run resumed
    from its checkpoint emits exactly the rows the uninterrupted run would.
    """
    graph = load_dataset(dataset, num_nodes=num_nodes)
    stream = replay_stream(graph, rng=seed)
    config = StreamingConfig(
        epsilon=epsilon,
        release_every=release_every,
        anchor_every=anchor_every,
        seed=seed,
        **({} if counting_backend is None else {"counting_backend": counting_backend}),
        **({} if statistic is None else {"statistic": statistic}),
        **({} if star_k is None else {"star_k": star_k}),
        **({} if workers is None else {"workers": workers}),
        telemetry=telemetry,
        resilience=resilience,
    )
    result = StreamingCargo(config).run(stream)
    report = ExperimentReport(
        name="stream",
        description=(
            f"continual private {result.statistic} counting over a {dataset} edge stream "
            f"(n={num_nodes}, epsilon={epsilon}, release_every={release_every}, "
            f"anchor_every={anchor_every})"
        ),
        columns=[
            "release",
            "event_index",
            "time",
            "estimate",
            "true_count",
            "l2_loss",
            "relative_error",
            "is_anchor",
            "epsilon_spent",
            "ledger_entries",
        ],
    )
    for release in result.releases:
        report.add_row(
            release=release.index,
            event_index=release.event_index,
            time=round(release.time, 3),
            estimate=release.estimate,
            true_count=release.true_count,
            l2_loss=l2_loss(release.true_count, release.estimate),
            # None (JSON null) rather than inf when the truth is zero: the
            # CLI's --json output must stay strictly parseable.
            relative_error=(
                relative_error(release.true_count, release.estimate)
                if release.true_count
                else None
            ),
            is_anchor=release.is_anchor,
            epsilon_spent=release.epsilon_spent,
            ledger_entries=release.ledger_entries,
        )
    # Sanity property surfaced alongside the report: the continual-release
    # ledger stays logarithmic in the number of releases (each anchor adds at
    # most two entries — its private max-degree estimate and its count
    # release — on top of the tree levels).
    if len(result.ledger) > tree_depth(result.capacity) + 2 * result.anchors_run:
        raise ExperimentError(
            f"continual-release ledger grew to {len(result.ledger)} entries for "
            f"{len(result.releases)} releases — expected at most "
            f"{tree_depth(result.capacity)} tree levels plus "
            f"{2 * result.anchors_run} anchor entries"
        )
    return report
