"""Shared experiment infrastructure.

The paper's figures are all of the form *"for each graph, for each value of a
swept parameter, run each protocol a few times and plot a summary of an error
metric"*.  :class:`ProtocolSweep` captures that shape once so each figure
module only declares what varies.

Seed scheme
-----------
All trial loops use a single documented derivation: trial ``t`` of a cell
whose base seed is ``s`` runs with seed ``s + t``.  For a bare
:func:`run_protocol_trials` call the base seed is the caller's ``base_seed``;
inside a :class:`ProtocolSweep` every (dataset, parameter, protocol) cell gets
its own deterministic base seed derived from the sweep seed and the cell's
labels (via :func:`~repro.utils.rng.stable_seed_from_name`), which makes each
cell independent of every other cell — and therefore of execution order, so a
parallel sweep (``max_workers > 1``) returns row-for-row identical reports to
a serial one.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles
from repro.metrics.aggregate import aggregate_trials
from repro.metrics.error import l2_loss, relative_error
from repro.utils.rng import stable_seed_from_name


@dataclass
class ExperimentReport:
    """The output of one experiment: named rows plus rendering helpers."""

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(values)

    def to_text(self) -> str:
        """Render the report as an aligned plain-text table."""
        return format_table(self.rows, columns=self.columns, title=f"{self.name}: {self.description}")

    def column(self, key: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]

    def filter_rows(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match every ``column=value`` criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]


#: Callable that builds a fresh protocol runner for a given (epsilon, seed).
ProtocolFactory = Callable[[float, int], Any]


def default_protocols(
    epsilon: float,
    counting_backend: Optional[Any] = None,
    cargo_overrides: Optional[Dict[str, Any]] = None,
) -> Dict[str, ProtocolFactory]:
    """The three protocols compared throughout the evaluation section.

    *counting_backend* (an enum member or registered name) selects CARGO's
    secure counting backend; ``None`` keeps the config default.
    *cargo_overrides* passes additional :class:`CargoConfig` fields through
    to the CARGO runs only (``workers``, ``offline_seed``, ``triple_store``,
    …); the baselines have no secure phase to tune.
    """
    cargo_kwargs = {} if counting_backend is None else {"counting_backend": counting_backend}
    if cargo_overrides:
        cargo_kwargs.update(cargo_overrides)
    return {
        "Local2Rounds": lambda eps, seed: LocalTwoRoundsTriangleCounting(epsilon=eps),
        "Cargo": lambda eps, seed: Cargo(CargoConfig(epsilon=eps, seed=seed, **cargo_kwargs)),
        "CentralLap": lambda eps, seed: CentralLaplaceTriangleCounting(epsilon=eps),
    }


def _execute_cell_payload(payload: Dict[str, Any]) -> Dict[str, float]:
    """Process-pool entry point: rebuild one sweep cell from plain data.

    Lives at module level (and consumes only picklable payloads) so a
    :class:`~concurrent.futures.ProcessPoolExecutor` can ship it to worker
    processes.  The graph is reloaded by dataset name inside the worker —
    datasets are deterministic synthetic graphs, so every process sees the
    identical cell the thread path would run.
    """
    from repro.parallel import TripleStore

    overrides = dict(payload["cargo_overrides"] or {})
    cache_dir = overrides.pop("triple_store_cache_dir", None)
    if cache_dir is not None:
        # In-memory stores cannot cross a process boundary; a disk-backed
        # store is rebuilt on its cache directory so cells still share
        # dealt material through the filesystem.
        overrides["triple_store"] = TripleStore(cache_dir=cache_dir)
    factories = default_protocols(
        payload["epsilon"], payload["counting_backend"], overrides
    )
    graph = load_dataset(payload["dataset"], num_nodes=payload["num_nodes"])
    return _execute_trials(
        factories[payload["protocol"]],
        graph,
        payload["epsilon"],
        payload["num_trials"],
        payload["base_seed"],
    )


def _accepts_rng(protocol: Any) -> bool:
    """Whether the runner's ``run`` accepts an ``rng`` argument.

    Decided by signature inspection rather than type checks so that new
    protocol runners (third-party or internal) get the right call convention
    without this module having to know about them: baselines take the trial
    seed at ``run()`` time, :class:`Cargo`-style runners take it in their
    config.
    """
    run = getattr(protocol, "run", None)
    if run is None:
        return False
    try:
        parameters = inspect.signature(run).parameters
    except (TypeError, ValueError):
        return False
    return "rng" in parameters


def _execute_trials(
    protocol_factory: ProtocolFactory,
    graph: Graph,
    epsilon: float,
    num_trials: int,
    base_seed: int,
) -> Dict[str, float]:
    """Run ``num_trials`` independent trials and aggregate both error metrics.

    This is the single trial loop behind :func:`run_protocol_trials` and
    :class:`ProtocolSweep`; trial ``t`` runs with seed ``base_seed + t`` (see
    the module docstring).
    """
    if num_trials <= 0:
        raise ExperimentError(f"num_trials must be positive, got {num_trials}")
    l2_values: List[float] = []
    re_values: List[float] = []
    for trial in range(num_trials):
        seed = base_seed + trial
        protocol = protocol_factory(epsilon, seed)
        # Baseline runners take the rng seed at run() time; Cargo takes it in
        # its config.  Both expose the same result interface.
        result = protocol.run(graph, rng=seed) if _accepts_rng(protocol) else protocol.run(graph)
        true_count = result.true_triangle_count
        estimate = result.noisy_triangle_count
        l2_values.append(l2_loss(true_count, estimate))
        if true_count > 0:
            re_values.append(relative_error(true_count, estimate))
    l2_aggregate = aggregate_trials(l2_values)
    re_aggregate = aggregate_trials(re_values) if re_values else None
    return {
        "l2_mean": l2_aggregate.mean,
        "l2_median": l2_aggregate.median,
        "re_mean": re_aggregate.mean if re_aggregate else float("inf"),
        "re_median": re_aggregate.median if re_aggregate else float("inf"),
    }


def run_protocol_trials(
    protocol_factory: ProtocolFactory,
    graph: Graph,
    epsilon: float,
    num_trials: int,
    base_seed: int = 0,
) -> Dict[str, float]:
    """Run one protocol *num_trials* times and aggregate both error metrics.

    Returns a dictionary with the mean/median of the l2 loss and relative
    error across trials, which is what every figure reports.
    """
    return _execute_trials(protocol_factory, graph, epsilon, num_trials, base_seed)


@dataclass(frozen=True)
class _SweepCell:
    """One (dataset, parameter, protocol) cell of a sweep, ready to execute."""

    dataset: str
    parameter_name: str
    parameter_value: Any
    protocol: str
    factory: ProtocolFactory
    graph: Graph
    epsilon: float


@dataclass
class ProtocolSweep:
    """A generic utility-versus-parameter sweep over several protocols.

    Parameters
    ----------
    datasets:
        Dataset names to evaluate on.
    num_nodes:
        Induced-subgraph size used for every dataset (the paper's default is
        2000 users; the repository default is smaller so benches stay quick).
    num_trials:
        Independent repetitions per (dataset, parameter, protocol) cell.
    seed:
        Base seed from which every trial seed is derived (see the module
        docstring for the exact scheme).
    max_workers:
        When greater than 1, sweep cells execute concurrently on a thread
        pool (or a process pool with *use_processes*).  Every cell derives
        its own seed from its labels, so the report is row-for-row identical
        to a serial run.
    use_processes:
        Run the concurrent cells on a :class:`ProcessPoolExecutor` instead
        of threads — sidesteps the GIL entirely for the Python-level parts
        of a cell at the cost of reloading each cell's (deterministic)
        dataset in the worker process.  Rows remain identical to a serial
        run; an in-memory *triple_store* cannot cross process boundaries
        (use a disk-backed one to share dealt material between processes).
    counting_backend:
        Secure counting backend for the CARGO runs in the sweep (enum member
        or registered name); ``None`` keeps the config default.
    workers:
        Per-run worker threads for each CARGO cell's secure count
        (``CargoConfig(workers=...)``); ``None`` keeps the serial path.
    sparse:
        Degree-local execution policy for the CARGO cells
        (``CargoConfig(sparse=...)``: ``auto`` / ``never`` / ``force``);
        ``None`` keeps the config default.
    tile_window:
        Bounded tile window for the blocked backend's offline material
        (``CargoConfig(tile_window=...)``); ``None`` keeps the
        all-groups-at-once behaviour.
    distributed:
        When ``True`` every CARGO cell runs on the process-separated
        runtime (``CargoConfig(distributed=...)``): dealer and servers as
        forked OS processes with all protocol messages on sockets.  Rows
        are identical to an in-process sweep (releases are bit-identical);
        ``None`` keeps the in-process engine.
    offline_seed:
        Pins the offline dealer randomness of every CARGO cell to one
        stream, which makes the dealt material identical across cells —
        combined with *triple_store* the sweep deals once and every further
        cell of the same geometry starts warm.  Evaluation-only mask reuse;
        see ``docs/performance.md``.
    triple_store:
        Optional :class:`~repro.parallel.store.TripleStore` shared by every
        CARGO cell.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` session shared by every
        CARGO cell (serial and thread-pool sweeps only: the session holds
        locks, so it cannot cross a process boundary and is silently dropped
        for ``use_processes=True`` cells).  Spans and metrics from all cells
        accumulate into the one session; reports are unchanged either way.
    """

    datasets: Sequence[str]
    num_nodes: int = 300
    num_trials: int = 3
    seed: int = 0
    max_workers: Optional[int] = None
    use_processes: bool = False
    counting_backend: Optional[Any] = None
    workers: Optional[int] = None
    sparse: Optional[str] = None
    tile_window: Optional[int] = None
    distributed: Optional[bool] = None
    offline_seed: Optional[int] = None
    triple_store: Optional[Any] = None
    telemetry: Optional[Any] = field(default=None, repr=False, compare=False)
    _graph_cache: Dict[Tuple[str, int], Graph] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def run_epsilon_sweep(self, epsilons: Sequence[float]) -> ExperimentReport:
        """Error of each protocol as ε varies (Figures 5 and 6)."""
        report = ExperimentReport(
            name="epsilon-sweep",
            description="l2 loss and relative error vs privacy budget",
            columns=["dataset", "epsilon", "protocol", "l2_mean", "re_mean"],
        )
        cells = [
            _SweepCell(
                dataset=dataset,
                parameter_name="epsilon",
                parameter_value=epsilon,
                protocol=label,
                factory=factory,
                graph=self._load_graph(dataset, self.num_nodes),
                epsilon=epsilon,
            )
            for dataset in self.datasets
            for epsilon in epsilons
            for label, factory in self._protocol_factories(epsilon).items()
        ]
        for cell, metrics in zip(cells, self._execute_cells(cells)):
            report.add_row(
                dataset=cell.dataset,
                epsilon=cell.parameter_value,
                protocol=cell.protocol,
                l2_mean=metrics["l2_mean"],
                re_mean=metrics["re_mean"],
            )
        return report

    def run_user_sweep(self, user_counts: Sequence[int], epsilon: float) -> ExperimentReport:
        """Error of each protocol as the number of users varies (Figures 7 and 8)."""
        report = ExperimentReport(
            name="user-sweep",
            description=f"l2 loss and relative error vs number of users (epsilon={epsilon})",
            columns=["dataset", "num_users", "protocol", "l2_mean", "re_mean"],
        )
        cells = [
            _SweepCell(
                dataset=dataset,
                parameter_name="num_users",
                parameter_value=num_users,
                protocol=label,
                factory=factory,
                graph=self._load_graph(dataset, num_users),
                epsilon=epsilon,
            )
            for dataset in self.datasets
            for num_users in user_counts
            for label, factory in self._protocol_factories(epsilon).items()
        ]
        for cell, metrics in zip(cells, self._execute_cells(cells)):
            report.add_row(
                dataset=cell.dataset,
                num_users=cell.parameter_value,
                protocol=cell.protocol,
                l2_mean=metrics["l2_mean"],
                re_mean=metrics["re_mean"],
            )
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _load_graph(self, dataset: str, num_nodes: int) -> Graph:
        """Load each (dataset, size) graph once and pre-compute its ground truth.

        The exact triangle count is cached on the graph instance up front so
        that concurrent trials only ever read it (no recomputation per trial,
        no write races in a parallel sweep).
        """
        key = (dataset, num_nodes)
        if key not in self._graph_cache:
            graph = load_dataset(dataset, num_nodes=num_nodes)
            count_triangles(graph)  # warm the per-graph ground-truth cache
            self._graph_cache[key] = graph
        return self._graph_cache[key]

    def _cargo_overrides(self, for_process: bool = False) -> Dict[str, Any]:
        """Extra :class:`CargoConfig` fields the sweep applies to CARGO cells."""
        overrides: Dict[str, Any] = {}
        if self.workers is not None:
            overrides["workers"] = self.workers
        if self.sparse is not None:
            overrides["sparse"] = self.sparse
        if self.tile_window is not None:
            overrides["tile_window"] = self.tile_window
        if self.distributed is not None:
            overrides["distributed"] = self.distributed
        if self.offline_seed is not None:
            overrides["offline_seed"] = self.offline_seed
        if self.triple_store is not None:
            if for_process:
                cache_dir = getattr(self.triple_store, "cache_dir", None)
                if cache_dir is not None:
                    overrides["triple_store_cache_dir"] = cache_dir
            else:
                overrides["triple_store"] = self.triple_store
        if self.telemetry is not None and not for_process:
            # The session holds locks (unpicklable); process-pool cells run
            # untraced rather than failing to serialise.
            overrides["telemetry"] = self.telemetry
        return overrides

    def _protocol_factories(self, epsilon: float) -> Dict[str, ProtocolFactory]:
        return default_protocols(epsilon, self.counting_backend, self._cargo_overrides())

    def _cell_seed(self, cell: _SweepCell) -> int:
        """Deterministic, order-independent base seed for one sweep cell."""
        label = (
            f"{cell.dataset}|{cell.parameter_name}={cell.parameter_value!r}"
            f"|{cell.protocol}|n={cell.graph.num_nodes}"
        )
        # Keep headroom so base_seed + trial stays well inside 2**63.
        return stable_seed_from_name(label, base_seed=self.seed) % (1 << 31)

    def _execute_cells(self, cells: Sequence[_SweepCell]) -> List[Dict[str, float]]:
        """Run every cell's trial loop: serially, on threads, or on processes."""

        def run_cell(cell: _SweepCell) -> Dict[str, float]:
            return _execute_trials(
                cell.factory, cell.graph, cell.epsilon, self.num_trials, self._cell_seed(cell)
            )

        if self.max_workers is None or self.max_workers <= 1 or len(cells) <= 1:
            return [run_cell(cell) for cell in cells]
        if self.use_processes:
            payloads = [
                {
                    "dataset": cell.dataset,
                    "num_nodes": cell.graph.num_nodes,
                    "protocol": cell.protocol,
                    "epsilon": cell.epsilon,
                    "num_trials": self.num_trials,
                    "base_seed": self._cell_seed(cell),
                    "counting_backend": (
                        None
                        if self.counting_backend is None
                        else getattr(self.counting_backend, "value", self.counting_backend)
                    ),
                    "cargo_overrides": self._cargo_overrides(for_process=True),
                }
                for cell in cells
            ]
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(_execute_cell_payload, payloads))
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(run_cell, cells))
