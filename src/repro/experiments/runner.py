"""Shared experiment infrastructure.

The paper's figures are all of the form *"for each graph, for each value of a
swept parameter, run each protocol a few times and plot a summary of an error
metric"*.  :class:`ProtocolSweep` captures that shape once so each figure
module only declares what varies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.exceptions import ExperimentError
from repro.experiments.reporting import format_table
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.metrics.aggregate import aggregate_trials
from repro.metrics.error import l2_loss, relative_error


@dataclass
class ExperimentReport:
    """The output of one experiment: named rows plus rendering helpers."""

    name: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    columns: Optional[List[str]] = None

    def add_row(self, **values: Any) -> None:
        """Append one result row."""
        self.rows.append(values)

    def to_text(self) -> str:
        """Render the report as an aligned plain-text table."""
        return format_table(self.rows, columns=self.columns, title=f"{self.name}: {self.description}")

    def column(self, key: str) -> List[Any]:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]

    def filter_rows(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match every ``column=value`` criterion."""
        return [
            row
            for row in self.rows
            if all(row.get(column) == value for column, value in criteria.items())
        ]


#: Callable that builds a fresh protocol runner for a given (epsilon, seed).
ProtocolFactory = Callable[[float, int], Any]


def default_protocols(epsilon: float) -> Dict[str, ProtocolFactory]:
    """The three protocols compared throughout the evaluation section."""
    return {
        "Local2Rounds": lambda eps, seed: LocalTwoRoundsTriangleCounting(epsilon=eps),
        "Cargo": lambda eps, seed: Cargo(CargoConfig(epsilon=eps, seed=seed)),
        "CentralLap": lambda eps, seed: CentralLaplaceTriangleCounting(epsilon=eps),
    }


def run_protocol_trials(
    protocol_factory: ProtocolFactory,
    graph: Graph,
    epsilon: float,
    num_trials: int,
    base_seed: int = 0,
) -> Dict[str, float]:
    """Run one protocol *num_trials* times and aggregate both error metrics.

    Returns a dictionary with the mean/median of the l2 loss and relative
    error across trials, which is what every figure reports.
    """
    if num_trials <= 0:
        raise ExperimentError(f"num_trials must be positive, got {num_trials}")
    l2_values: List[float] = []
    re_values: List[float] = []
    for trial in range(num_trials):
        seed = base_seed + trial
        protocol = protocol_factory(epsilon, seed)
        # Baseline runners take the rng seed at run() time; Cargo takes it in
        # its config.  Both expose the same result interface.
        result = protocol.run(graph, rng=seed) if _accepts_rng(protocol) else protocol.run(graph)
        true_count = result.true_triangle_count
        estimate = result.noisy_triangle_count
        l2_values.append(l2_loss(true_count, estimate))
        if true_count > 0:
            re_values.append(relative_error(true_count, estimate))
    l2_aggregate = aggregate_trials(l2_values)
    re_aggregate = aggregate_trials(re_values) if re_values else None
    return {
        "l2_mean": l2_aggregate.mean,
        "l2_median": l2_aggregate.median,
        "re_mean": re_aggregate.mean if re_aggregate else float("inf"),
        "re_median": re_aggregate.median if re_aggregate else float("inf"),
    }


@dataclass
class ProtocolSweep:
    """A generic utility-versus-parameter sweep over several protocols.

    Parameters
    ----------
    datasets:
        Dataset names to evaluate on.
    num_nodes:
        Induced-subgraph size used for every dataset (the paper's default is
        2000 users; the repository default is smaller so benches stay quick).
    num_trials:
        Independent repetitions per (dataset, parameter, protocol) cell.
    seed:
        Base seed from which every trial seed is derived.
    """

    datasets: Sequence[str]
    num_nodes: int = 300
    num_trials: int = 3
    seed: int = 0

    def run_epsilon_sweep(self, epsilons: Sequence[float]) -> ExperimentReport:
        """Error of each protocol as ε varies (Figures 5 and 6)."""
        report = ExperimentReport(
            name="epsilon-sweep",
            description="l2 loss and relative error vs privacy budget",
            columns=["dataset", "epsilon", "protocol", "l2_mean", "re_mean"],
        )
        for dataset in self.datasets:
            graph = load_dataset(dataset, num_nodes=self.num_nodes)
            for epsilon in epsilons:
                for label, factory in default_protocols(epsilon).items():
                    metrics = self._run_cell(factory, graph, epsilon)
                    report.add_row(
                        dataset=dataset,
                        epsilon=epsilon,
                        protocol=label,
                        l2_mean=metrics["l2_mean"],
                        re_mean=metrics["re_mean"],
                    )
        return report

    def run_user_sweep(self, user_counts: Sequence[int], epsilon: float) -> ExperimentReport:
        """Error of each protocol as the number of users varies (Figures 7 and 8)."""
        report = ExperimentReport(
            name="user-sweep",
            description=f"l2 loss and relative error vs number of users (epsilon={epsilon})",
            columns=["dataset", "num_users", "protocol", "l2_mean", "re_mean"],
        )
        for dataset in self.datasets:
            for num_users in user_counts:
                graph = load_dataset(dataset, num_nodes=num_users)
                for label, factory in default_protocols(epsilon).items():
                    metrics = self._run_cell(factory, graph, epsilon)
                    report.add_row(
                        dataset=dataset,
                        num_users=num_users,
                        protocol=label,
                        l2_mean=metrics["l2_mean"],
                        re_mean=metrics["re_mean"],
                    )
        return report

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _run_cell(self, factory: ProtocolFactory, graph: Graph, epsilon: float) -> Dict[str, float]:
        l2_values: List[float] = []
        re_values: List[float] = []
        for trial in range(self.num_trials):
            seed = self.seed * 10_000 + trial
            protocol = factory(epsilon, seed)
            result = protocol.run(graph, rng=seed) if _accepts_rng(protocol) else protocol.run(graph)
            l2_values.append(l2_loss(result.true_triangle_count, result.noisy_triangle_count))
            if result.true_triangle_count > 0:
                re_values.append(
                    relative_error(result.true_triangle_count, result.noisy_triangle_count)
                )
        return {
            "l2_mean": aggregate_trials(l2_values).mean,
            "re_mean": aggregate_trials(re_values).mean if re_values else float("inf"),
        }


def _accepts_rng(protocol: Any) -> bool:
    """Whether the runner's ``run`` accepts an ``rng`` argument (baselines do)."""
    return not isinstance(protocol, Cargo)
