"""Generators for the paper's tables (II–V).

Every function returns an :class:`~repro.experiments.runner.ExperimentReport`
whose rows mirror the corresponding table's rows; the benchmarks print the
text rendering, and ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.max_degree import MaxDegreeEstimator
from repro.dp.smooth_sensitivity import (
    residual_sensitivity_triangles,
    smooth_sensitivity_triangles,
)
from repro.experiments.runner import ExperimentReport
from repro.graph.datasets import DATASET_REGISTRY, dataset_spec, load_dataset
from repro.graph.statistics import graph_summary
from repro.metrics.aggregate import aggregate_trials

#: The four graphs of the main evaluation (Table IV and Figures 5-12).
MAIN_DATASETS = ("facebook", "wiki", "hepph", "enron")

#: The five graphs of the sensitivity comparison (Table III).
SENSITIVITY_DATASETS = ("condmat", "astroph", "hepph", "hepth", "grqc")


def table2_theoretical_summary() -> ExperimentReport:
    """Table II — the analytic comparison of the three models.

    This table is analytic rather than empirical; the report reproduces the
    paper's rows (trust model, privacy notion, utility bound, and time
    complexity) so the CLI can print the full set of artefacts.
    """
    report = ExperimentReport(
        name="table2",
        description="Theoretical comparison of CentralLap, CARGO, and Local2Rounds",
        columns=["property", "CentralLap", "CARGO", "Local2Rounds"],
    )
    report.add_row(
        property="server",
        CentralLap="trusted",
        CARGO="untrusted (two non-colluding)",
        Local2Rounds="untrusted",
    )
    report.add_row(
        property="privacy",
        CentralLap="eps-Edge CDP",
        CARGO="(eps1+eps2)-Edge DDP",
        Local2Rounds="eps-Edge LDP",
    )
    report.add_row(
        property="expected l2 loss",
        CentralLap="O(dmax^2 / eps^2)",
        CARGO="O(d'max^2 / eps2^2)",
        Local2Rounds="O(e^eps/(e^eps-1)^2 (dmax^3 n + e^eps dmax^2 n / eps^2))",
    )
    report.add_row(
        property="time complexity",
        CentralLap="O(1) per release",
        CARGO="O(n^3)",
        Local2Rounds="O(n^2 + n dmax^2)",
    )
    return report


def table3_sensitivity_comparison(
    epsilon: float = 1.0,
    num_nodes: Optional[int] = 400,
    datasets: Sequence[str] = SENSITIVITY_DATASETS,
    seed: int = 1,
) -> ExperimentReport:
    """Table III — noisy max degree vs smooth / residual sensitivity.

    For each collaboration graph, reports CARGO's noisy maximum degree
    ``d'_max`` next to the smooth sensitivity (SS) and residual sensitivity
    (RS) of triangle counting at ε = 1.  The paper's point is qualitative:
    ``d'_max`` is in the same ballpark as SS/RS — sometimes above, sometimes
    below — so the simple Laplace calibration is not unreasonably loose.
    """
    report = ExperimentReport(
        name="table3",
        description=f"d'_max vs smooth sensitivity (SS) and residual sensitivity (RS), epsilon={epsilon}",
        columns=["graph", "d_max", "noisy_d_max", "smooth_sensitivity", "residual_sensitivity"],
    )
    for name in datasets:
        graph = load_dataset(name, num_nodes=num_nodes)
        estimator = MaxDegreeEstimator(epsilon1=epsilon)
        max_result = estimator.run(graph.degrees(), rng=seed)
        report.add_row(
            graph=name,
            d_max=graph.max_degree(),
            noisy_d_max=round(max_result.noisy_max_degree, 1),
            smooth_sensitivity=round(smooth_sensitivity_triangles(graph, epsilon), 1),
            residual_sensitivity=round(residual_sensitivity_triangles(graph, epsilon), 1),
        )
    return report


def table4_dataset_statistics(
    num_nodes: Optional[int] = None,
    scale: float = 0.25,
    datasets: Sequence[str] = MAIN_DATASETS,
) -> ExperimentReport:
    """Table IV — dataset overview (|V|, |E|, d_max, domain).

    The ``original_*`` columns repeat the SNAP statistics from the paper;
    the ``generated_*`` columns describe the synthetic stand-in actually used
    by the experiments at the requested scale.
    """
    report = ExperimentReport(
        name="table4",
        description="Dataset statistics: original SNAP graphs and synthetic stand-ins",
        columns=[
            "graph",
            "domain",
            "original_nodes",
            "original_edges",
            "original_dmax",
            "generated_nodes",
            "generated_edges",
            "generated_dmax",
            "generated_triangles",
        ],
    )
    for name in datasets:
        spec = dataset_spec(name)
        graph = load_dataset(name, scale=scale, num_nodes=num_nodes)
        summary = graph_summary(graph)
        report.add_row(
            graph=name,
            domain=spec.domain,
            original_nodes=spec.num_nodes,
            original_edges=spec.num_edges,
            original_dmax=spec.max_degree,
            generated_nodes=summary.num_nodes,
            generated_edges=summary.num_edges,
            generated_dmax=summary.max_degree,
            generated_triangles=summary.triangle_count,
        )
    return report


def table5_noisy_max_degree(
    epsilons: Sequence[float] = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
    num_nodes: Optional[int] = 400,
    num_trials: int = 5,
    datasets: Sequence[str] = MAIN_DATASETS,
    max_degree_fraction: float = 0.1,
    seed: int = 0,
) -> ExperimentReport:
    """Table V — noisy maximum degree ``d'_max`` under various ε.

    The `Max` algorithm spends ε1 = *max_degree_fraction* · ε, matching the
    protocol's budget split, and the table reports the mean noisy maximum
    over repeated trials together with the true maximum for reference.
    """
    report = ExperimentReport(
        name="table5",
        description="Noisy maximum degree d'_max under varying total epsilon",
        columns=["graph", "d_max"] + [f"eps={eps}" for eps in epsilons],
    )
    for name in datasets:
        graph = load_dataset(name, num_nodes=num_nodes)
        degrees = graph.degrees()
        row = {"graph": name, "d_max": graph.max_degree()}
        for eps in epsilons:
            estimator = MaxDegreeEstimator(epsilon1=eps * max_degree_fraction)
            trials = [
                estimator.run(degrees, rng=seed * 1000 + trial).noisy_max_degree
                for trial in range(num_trials)
            ]
            row[f"eps={eps}"] = round(aggregate_trials(trials).mean, 1)
        report.add_row(**row)
    return report
