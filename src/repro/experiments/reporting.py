"""Plain-text rendering of experiment results.

The benchmarks and the CLI print the same rows the paper reports; this module
keeps the formatting in one place so every artefact renders consistently.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _format_cell(value: Any) -> str:
    """Human-readable cell: scientific notation for large/small floats."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dictionaries as an aligned plain-text table.

    Parameters
    ----------
    rows:
        One dictionary per row.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    keys: List[str] = list(columns) if columns is not None else list(rows[0].keys())
    rendered = [[_format_cell(row.get(key, "")) for key in keys] for row in rows]
    widths = [
        max(len(key), max(len(line[index]) for line in rendered))
        for index, key in enumerate(keys)
    ]
    header = "  ".join(key.ljust(width) for key, width in zip(keys, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths))
        for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)
