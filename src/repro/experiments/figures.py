"""Generators for the paper's figures (5–12).

Each function regenerates the data series behind one figure and returns it as
an :class:`~repro.experiments.runner.ExperimentReport`.  The repository does
not plot (matplotlib is not a dependency); the reports contain exactly the
series a plot would show, and ``EXPERIMENTS.md`` compares their shape with
the paper's curves.

Default sizes are scaled down from the paper (300–600 users instead of
500–4000, 2–3 trials instead of many) so the whole suite runs in minutes on a
laptop; every function accepts the paper-scale parameters for a full rerun.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.baselines.central_lap import CentralLaplaceTriangleCounting
from repro.baselines.local_two_rounds import LocalTwoRoundsTriangleCounting
from repro.baselines.random_projection import RandomProjection
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig, CountingBackend
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.experiments.runner import ExperimentReport, ProtocolSweep
from repro.graph.datasets import load_dataset
from repro.graph.triangles import count_triangles
from repro.metrics.aggregate import aggregate_trials
from repro.metrics.error import l2_loss, relative_error

#: Figure 5/6 graphs.
EPSILON_SWEEP_DATASETS = ("facebook", "wiki", "hepph", "enron")
#: Figure 7/8/11/12 graphs.
USER_SWEEP_DATASETS = ("facebook", "wiki")
#: Default ε grid of Figures 5 and 6.
DEFAULT_EPSILONS = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
#: Default user-count grid of Figures 7, 8, 11, 12 (paper: 500–4000).
DEFAULT_USER_COUNTS = (100, 200, 300, 400)


# --------------------------------------------------------------------- #
# Figures 5 and 6 — error vs epsilon
# --------------------------------------------------------------------- #
def figure5_l2_vs_epsilon(
    datasets: Sequence[str] = EPSILON_SWEEP_DATASETS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    num_nodes: int = 300,
    num_trials: int = 3,
    seed: int = 0,
    max_workers: Optional[int] = None,
    counting_backend: Optional[object] = None,
    workers: Optional[int] = None,
    distributed: Optional[bool] = None,
) -> ExperimentReport:
    """Figure 5 — l2 loss of triangle counting as ε varies from 0.5 to 3."""
    sweep = ProtocolSweep(
        datasets=datasets,
        num_nodes=num_nodes,
        num_trials=num_trials,
        seed=seed,
        max_workers=max_workers,
        counting_backend=counting_backend,
        workers=workers,
        distributed=distributed,
    )
    report = sweep.run_epsilon_sweep(epsilons)
    report.name = "fig5"
    report.description = "l2 loss vs epsilon (CARGO vs CentralLap vs Local2Rounds)"
    return report


def figure6_relative_error_vs_epsilon(
    datasets: Sequence[str] = EPSILON_SWEEP_DATASETS,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    num_nodes: int = 300,
    num_trials: int = 3,
    seed: int = 0,
    max_workers: Optional[int] = None,
    counting_backend: Optional[object] = None,
    workers: Optional[int] = None,
    distributed: Optional[bool] = None,
) -> ExperimentReport:
    """Figure 6 — relative error of triangle counting as ε varies.

    The same sweep as Figure 5; the report simply keys on the relative-error
    column.  Running it separately keeps the per-figure benchmarks
    independent.
    """
    report = figure5_l2_vs_epsilon(
        datasets, epsilons, num_nodes, num_trials, seed, max_workers, counting_backend,
        workers, distributed,
    )
    report.name = "fig6"
    report.description = "relative error vs epsilon (CARGO vs CentralLap vs Local2Rounds)"
    report.columns = ["dataset", "epsilon", "protocol", "re_mean", "l2_mean"]
    return report


# --------------------------------------------------------------------- #
# Figures 7 and 8 — error vs number of users
# --------------------------------------------------------------------- #
def figure7_l2_vs_n(
    datasets: Sequence[str] = USER_SWEEP_DATASETS,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    epsilon: float = 2.0,
    num_trials: int = 3,
    seed: int = 0,
    max_workers: Optional[int] = None,
    counting_backend: Optional[object] = None,
    workers: Optional[int] = None,
    distributed: Optional[bool] = None,
) -> ExperimentReport:
    """Figure 7 — l2 loss as the number of users n grows (ε = 2)."""
    sweep = ProtocolSweep(
        datasets=datasets,
        num_trials=num_trials,
        seed=seed,
        max_workers=max_workers,
        counting_backend=counting_backend,
        workers=workers,
        distributed=distributed,
    )
    report = sweep.run_user_sweep(user_counts, epsilon)
    report.name = "fig7"
    report.description = f"l2 loss vs number of users (epsilon={epsilon})"
    return report


def figure8_relative_error_vs_n(
    datasets: Sequence[str] = USER_SWEEP_DATASETS,
    user_counts: Sequence[int] = DEFAULT_USER_COUNTS,
    epsilon: float = 2.0,
    num_trials: int = 3,
    seed: int = 0,
    max_workers: Optional[int] = None,
    counting_backend: Optional[object] = None,
    workers: Optional[int] = None,
    distributed: Optional[bool] = None,
) -> ExperimentReport:
    """Figure 8 — relative error as the number of users n grows (ε = 2)."""
    report = figure7_l2_vs_n(
        datasets, user_counts, epsilon, num_trials, seed, max_workers, counting_backend,
        workers, distributed,
    )
    report.name = "fig8"
    report.description = f"relative error vs number of users (epsilon={epsilon})"
    report.columns = ["dataset", "num_users", "protocol", "re_mean", "l2_mean"]
    return report


# --------------------------------------------------------------------- #
# Figures 9 and 10 — projection loss vs theta
# --------------------------------------------------------------------- #
def figure9_projection_l2(
    datasets: Sequence[str] = EPSILON_SWEEP_DATASETS,
    thetas: Sequence[int] = (5, 10, 25, 50, 100),
    num_nodes: int = 400,
    num_trials: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 9 — l2 projection loss of `Project` vs random `GraphProjection`.

    For each projection parameter θ both methods truncate every user's
    adjacency list to θ neighbours; the loss is measured between the exact
    triangle count and the count surviving in the projected (asymmetric)
    adjacency rows, with no noise involved.
    """
    report = ExperimentReport(
        name="fig9",
        description="projection l2 loss vs theta (similarity Project vs random GraphProjection)",
        columns=["dataset", "theta", "method", "l2_mean", "re_mean"],
    )
    for dataset in datasets:
        graph = load_dataset(dataset, num_nodes=num_nodes)
        true_count = count_triangles(graph)
        for theta in thetas:
            similarity = SimilarityProjection(theta)
            projected = similarity.project_graph(graph)
            surviving = projected_triangle_count(projected.projected_rows)
            report.add_row(
                dataset=dataset,
                theta=theta,
                method="Project",
                l2_mean=l2_loss(true_count, surviving),
                re_mean=relative_error(true_count, surviving) if true_count else float("inf"),
            )
            random_l2 = []
            random_re = []
            for trial in range(num_trials):
                random_projection = RandomProjection(theta)
                random_result = random_projection.project_graph(graph, rng=seed * 100 + trial)
                random_surviving = projected_triangle_count(random_result.projected_rows)
                random_l2.append(l2_loss(true_count, random_surviving))
                if true_count:
                    random_re.append(relative_error(true_count, random_surviving))
            report.add_row(
                dataset=dataset,
                theta=theta,
                method="GraphProjection",
                l2_mean=aggregate_trials(random_l2).mean,
                re_mean=aggregate_trials(random_re).mean if random_re else float("inf"),
            )
    return report


def figure10_projection_relative_error(
    datasets: Sequence[str] = EPSILON_SWEEP_DATASETS,
    thetas: Sequence[int] = (5, 10, 25, 50, 100),
    num_nodes: int = 400,
    num_trials: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 10 — relative projection loss vs θ (same sweep as Figure 9)."""
    report = figure9_projection_l2(datasets, thetas, num_nodes, num_trials, seed)
    report.name = "fig10"
    report.description = "projection relative error vs theta (Project vs GraphProjection)"
    report.columns = ["dataset", "theta", "method", "re_mean", "l2_mean"]
    return report


# --------------------------------------------------------------------- #
# Figures 11 and 12 — running time vs number of users
# --------------------------------------------------------------------- #
def figure11_running_time(
    dataset: str = "facebook",
    user_counts: Sequence[int] = (100, 200, 300),
    epsilon: float = 2.0,
    seed: int = 0,
    counting_backend: CountingBackend = CountingBackend.MATRIX,
) -> ExperimentReport:
    """Figure 11 — running time on Facebook as n grows.

    Reports the wall-clock time of CentralLap△, Local2Rounds△, the full
    CARGO protocol, and CARGO's `Count` phase alone (the paper shows that
    Count dominates CARGO's cost).
    """
    report = ExperimentReport(
        name="fig11",
        description=f"running time vs number of users on {dataset} (epsilon={epsilon})",
        columns=["dataset", "num_users", "central_lap_s", "local2rounds_s", "cargo_s", "cargo_count_s"],
    )
    for num_users in user_counts:
        graph = load_dataset(dataset, num_nodes=num_users)

        start = time.perf_counter()
        CentralLaplaceTriangleCounting(epsilon=epsilon).run(graph, rng=seed)
        central_seconds = time.perf_counter() - start

        start = time.perf_counter()
        LocalTwoRoundsTriangleCounting(epsilon=epsilon).run(graph, rng=seed)
        local_seconds = time.perf_counter() - start

        cargo = Cargo(CargoConfig(epsilon=epsilon, seed=seed, counting_backend=counting_backend))
        result = cargo.run(graph)
        cargo_seconds = result.timings.get("total", 0.0)
        count_seconds = result.timings.get("count", 0.0)

        report.add_row(
            dataset=dataset,
            num_users=num_users,
            central_lap_s=central_seconds,
            local2rounds_s=local_seconds,
            cargo_s=cargo_seconds,
            cargo_count_s=count_seconds,
        )
    return report


def figure12_running_time_wiki(
    user_counts: Sequence[int] = (100, 200, 300),
    epsilon: float = 2.0,
    seed: int = 0,
    counting_backend: CountingBackend = CountingBackend.MATRIX,
) -> ExperimentReport:
    """Figure 12 — running time on Wiki as n grows (same series as Figure 11)."""
    report = figure11_running_time(
        dataset="wiki",
        user_counts=user_counts,
        epsilon=epsilon,
        seed=seed,
        counting_backend=counting_backend,
    )
    report.name = "fig12"
    report.description = f"running time vs number of users on wiki (epsilon={epsilon})"
    return report
