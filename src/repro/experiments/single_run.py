"""One fully-instrumented protocol release — the CLI's ``run`` experiment.

Every other experiment aggregates error metrics over many trials; this one
executes a *single* release of the configured statistic through the
configured backend with communication tracking and an in-memory triple
store engaged, so one invocation exercises the entire observability
surface: the run's span tree, the metric registry, the ledger-reconciled
per-phase communication totals, and the triple-store hit/miss statistics.
It is what ``repro-cargo run --trace-out trace.json --metrics-out
metrics.prom`` drives, and what the telemetry smoke benchmark loops over
every backend × statistic.
"""

from __future__ import annotations

from typing import Optional

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.experiments.runner import ExperimentReport
from repro.graph.datasets import load_dataset
from repro.parallel import TripleStore

__all__ = ["single_release"]


def single_release(
    dataset: str = "facebook",
    num_nodes: int = 60,
    epsilon: float = 4.0,
    seed: int = 0,
    counting_backend: Optional[str] = None,
    statistic: Optional[str] = None,
    star_k: Optional[int] = None,
    workers: Optional[int] = None,
    sparse: Optional[str] = None,
    tile_window: Optional[int] = None,
    authenticate: bool = False,
    distributed: bool = False,
    telemetry: Optional[object] = None,
    resilience: Optional[object] = None,
) -> ExperimentReport:
    """Run one private release end to end and report what it did.

    The report has exactly one row.  Scalar columns render in the text
    table; the row additionally carries the full per-run ``telemetry``
    block (phase table, opening rounds, triple-store stats) and the
    ``communication_phases`` map for JSON consumers — the CLI's ``--json``
    output and the manifest-reconciliation smoke checks read them from
    here.  With *distributed* the release runs on the process-separated
    runtime (no triple store: the dealer process deals fresh material) and
    the row gains a ``transport`` block with wire-frame counts, payload
    bytes, framing overhead, and per-process wall times.
    """
    graph = load_dataset(dataset, num_nodes=num_nodes)
    store = None if distributed else TripleStore()
    config = CargoConfig(
        epsilon=epsilon,
        seed=seed,
        triple_store=store,
        track_communication=True,
        authenticate=authenticate,
        distributed=distributed,
        telemetry=telemetry,
        resilience=resilience,
        **({} if counting_backend is None else {"counting_backend": counting_backend}),
        **({} if statistic is None else {"statistic": statistic}),
        **({} if star_k is None else {"star_k": star_k}),
        **({} if workers is None else {"workers": workers}),
        **({} if sparse is None else {"sparse": sparse}),
        **({} if tile_window is None else {"tile_window": tile_window}),
    )
    result = Cargo(config).run(graph)
    comm_bytes = sum(
        entry.get("bytes", 0) for entry in result.communication_phases.values()
    )
    comm_messages = sum(
        entry.get("messages", 0) for entry in result.communication_phases.values()
    )
    report = ExperimentReport(
        name="run",
        description=(
            f"one private {result.statistic} release on {dataset} "
            f"(n={num_nodes}, backend={result.backend}, epsilon={epsilon})"
        ),
        columns=[
            "dataset",
            "statistic",
            "backend",
            "noisy_count",
            "true_count",
            "seconds",
            "comm_bytes",
            "comm_messages",
        ],
    )
    report.add_row(
        dataset=dataset,
        statistic=result.statistic,
        backend=result.backend,
        noisy_count=result.noisy_triangle_count,
        true_count=result.true_triangle_count,
        seconds=result.timings.get("total", 0.0),
        comm_bytes=comm_bytes,
        comm_messages=comm_messages,
        communication_phases=result.communication_phases,
        triple_store=store.stats() if store is not None else {},
        telemetry=result.telemetry,
        **(
            {"transport": result.telemetry["transport"]}
            if result.telemetry and "transport" in result.telemetry
            else {}
        ),
    )
    return report
