"""Communication-overhead experiment (extension beyond the paper's figures).

The paper reports running time (Figures 11-12) but discusses communication
only qualitatively.  This experiment quantifies it: for each protocol phase
it reports the number of messages and bytes exchanged between users and the
two servers, per graph size, using the byte-accounting runtime.  It is the
basis of the `bench_ext_communication.py` benchmark and of the DESIGN.md
ablation discussion on where CARGO's overhead lives.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.experiments.runner import ExperimentReport
from repro.graph.datasets import load_dataset


def communication_overhead(
    dataset: str = "facebook",
    user_counts: Sequence[int] = (50, 100, 200),
    epsilon: float = 2.0,
    seed: int = 0,
) -> ExperimentReport:
    """Measure CARGO's communication footprint as the number of users grows.

    Per graph size the report contains the total message count, the total
    bytes, and the bytes attributable to the adjacency-share upload (the
    dominant term, quadratic in n because each user uploads an n-element
    share vector to each server).
    """
    report = ExperimentReport(
        name="ext-communication",
        description=f"communication overhead vs number of users on {dataset} (epsilon={epsilon})",
        columns=[
            "dataset",
            "num_users",
            "total_messages",
            "total_bytes",
            "adjacency_share_bytes",
            "noise_share_bytes",
            "bytes_per_user",
        ],
    )
    for num_users in user_counts:
        graph = load_dataset(dataset, num_nodes=num_users)
        config = CargoConfig(epsilon=epsilon, seed=seed, track_communication=True)
        result = Cargo(config).run(graph)
        total_messages = sum(entry["messages"] for entry in result.communication.values())
        total_bytes = sum(entry["bytes"] for entry in result.communication.values())
        # Every message is tagged with its protocol phase at send time, so
        # the adjacency-share/noise-share split is read straight off the
        # ledger instead of being reconstructed from message sizes.
        phases = result.communication_phases
        adjacency_bytes = phases.get("adjacency_share", {}).get("bytes", 0)
        noise_bytes = phases.get("noise_share", {}).get("bytes", 0)
        report.add_row(
            dataset=dataset,
            num_users=num_users,
            total_messages=total_messages,
            total_bytes=total_bytes,
            adjacency_share_bytes=adjacency_bytes,
            noise_share_bytes=noise_bytes,
            bytes_per_user=total_bytes / max(num_users, 1),
        )
    return report
