"""Registry mapping paper artefacts to their regeneration functions.

Each entry names a table or figure from the paper, the function that
regenerates it, and the modules implementing the pieces, so the CLI (and a
reader of ``DESIGN.md``) can go from "Figure 9" to runnable code in one hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.exceptions import ExperimentError
from repro.experiments import figures, single_run, statistics, streaming, tables
from repro.experiments.runner import ExperimentReport
from repro.verify import audit as verify_audit


@dataclass(frozen=True)
class ExperimentSpec:
    """One regenerable paper artefact."""

    name: str
    paper_artifact: str
    description: str
    runner: Callable[..., ExperimentReport]
    modules: tuple

    def run(self, **overrides) -> ExperimentReport:
        """Execute the experiment, forwarding any keyword overrides."""
        return self.runner(**overrides)


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            name="table2",
            paper_artifact="Table II",
            description="Theoretical comparison of the three models",
            runner=tables.table2_theoretical_summary,
            modules=("repro.core.cargo", "repro.baselines"),
        ),
        ExperimentSpec(
            name="table3",
            paper_artifact="Table III",
            description="Noisy max degree vs smooth/residual sensitivity",
            runner=tables.table3_sensitivity_comparison,
            modules=("repro.dp.smooth_sensitivity", "repro.core.max_degree"),
        ),
        ExperimentSpec(
            name="table4",
            paper_artifact="Table IV",
            description="Dataset statistics",
            runner=tables.table4_dataset_statistics,
            modules=("repro.graph.datasets", "repro.graph.statistics"),
        ),
        ExperimentSpec(
            name="table5",
            paper_artifact="Table V",
            description="Noisy maximum degree under varying epsilon",
            runner=tables.table5_noisy_max_degree,
            modules=("repro.core.max_degree",),
        ),
        ExperimentSpec(
            name="fig5",
            paper_artifact="Figure 5",
            description="l2 loss vs epsilon",
            runner=figures.figure5_l2_vs_epsilon,
            modules=("repro.core.cargo", "repro.baselines.central_lap", "repro.baselines.local_two_rounds"),
        ),
        ExperimentSpec(
            name="fig6",
            paper_artifact="Figure 6",
            description="relative error vs epsilon",
            runner=figures.figure6_relative_error_vs_epsilon,
            modules=("repro.core.cargo", "repro.baselines.central_lap", "repro.baselines.local_two_rounds"),
        ),
        ExperimentSpec(
            name="fig7",
            paper_artifact="Figure 7",
            description="l2 loss vs number of users",
            runner=figures.figure7_l2_vs_n,
            modules=("repro.core.cargo", "repro.baselines"),
        ),
        ExperimentSpec(
            name="fig8",
            paper_artifact="Figure 8",
            description="relative error vs number of users",
            runner=figures.figure8_relative_error_vs_n,
            modules=("repro.core.cargo", "repro.baselines"),
        ),
        ExperimentSpec(
            name="fig9",
            paper_artifact="Figure 9",
            description="projection l2 loss vs theta",
            runner=figures.figure9_projection_l2,
            modules=("repro.core.projection", "repro.baselines.random_projection"),
        ),
        ExperimentSpec(
            name="fig10",
            paper_artifact="Figure 10",
            description="projection relative error vs theta",
            runner=figures.figure10_projection_relative_error,
            modules=("repro.core.projection", "repro.baselines.random_projection"),
        ),
        ExperimentSpec(
            name="fig11",
            paper_artifact="Figure 11",
            description="running time vs number of users (Facebook)",
            runner=figures.figure11_running_time,
            modules=("repro.core.cargo", "repro.core.fast_counting", "repro.baselines"),
        ),
        ExperimentSpec(
            name="fig12",
            paper_artifact="Figure 12",
            description="running time vs number of users (Wiki)",
            runner=figures.figure12_running_time_wiki,
            modules=("repro.core.cargo", "repro.core.fast_counting", "repro.baselines"),
        ),
        ExperimentSpec(
            name="stream",
            paper_artifact="(extension)",
            description="continual private statistic release over an edge stream",
            runner=streaming.streaming_accuracy_over_time,
            modules=("repro.stream", "repro.core.backends", "repro.dp.accountant"),
        ),
        ExperimentSpec(
            name="run",
            paper_artifact="(extension)",
            description="one fully-instrumented protocol release (any backend x statistic)",
            runner=single_run.single_release,
            modules=("repro.core.cargo", "repro.telemetry"),
        ),
        ExperimentSpec(
            name="audit",
            paper_artifact="(extension)",
            description="empirical privacy audit of the full release (honest pass + planted-bug fail)",
            runner=verify_audit.audit_experiment,
            modules=("repro.verify.audit", "repro.dp.auditing", "repro.core.cargo"),
        ),
        ExperimentSpec(
            name="stats",
            paper_artifact="(extension)",
            description="private subgraph statistics (triangles, k-stars, 4-cycles) vs epsilon",
            runner=statistics.statistics_accuracy,
            modules=("repro.stats", "repro.core.cargo", "repro.analysis.subgraphs"),
        ),
    )
}


def list_experiments() -> List[str]:
    """Names of all registered experiments, in registry order."""
    return list(EXPERIMENTS)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an experiment by name (``table3``, ``fig5``, …)."""
    key = name.lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]
