"""Paper-scale presets for every experiment.

The default parameters used by the CLI and the benchmarks are scaled down so
the whole suite runs in minutes.  This module records the parameters the
paper actually used (Section V-A: n defaults to 2000, ε defaults to 2,
ε ∈ [0.5, 3], n ∈ [500, 4000], θ sweeps up to the true maximum degree) so a
full-fidelity rerun is a one-liner:

>>> from repro.experiments.paper_scale import paper_scale_overrides, run_at_paper_scale
>>> report = run_at_paper_scale("fig5")          # hours, not minutes  # doctest: +SKIP

``paper_scale_overrides`` only returns keyword arguments, so callers can also
tweak individual settings (e.g. fewer trials) before launching.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.exceptions import ExperimentError
from repro.experiments.specs import get_experiment

#: Paper-scale keyword overrides per experiment name.
PAPER_SCALE_OVERRIDES: Dict[str, Dict[str, Any]] = {
    "table2": {},
    "table3": {"epsilon": 1.0, "num_nodes": None},
    "table4": {"scale": 1.0},
    "table5": {
        "epsilons": (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        "num_nodes": 2000,
        "num_trials": 10,
    },
    "fig5": {
        "datasets": ("facebook", "wiki", "hepph", "enron"),
        "epsilons": (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        "num_nodes": 2000,
        "num_trials": 10,
    },
    "fig6": {
        "datasets": ("facebook", "wiki", "hepph", "enron"),
        "epsilons": (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        "num_nodes": 2000,
        "num_trials": 10,
    },
    "fig7": {
        "datasets": ("facebook", "wiki"),
        "user_counts": (500, 1000, 2000, 3000, 4000),
        "epsilon": 2.0,
        "num_trials": 10,
    },
    "fig8": {
        "datasets": ("facebook", "wiki"),
        "user_counts": (500, 1000, 2000, 3000, 4000),
        "epsilon": 2.0,
        "num_trials": 10,
    },
    "fig9": {
        "datasets": ("facebook", "wiki", "hepph", "enron"),
        "thetas": (10, 50, 100, 250, 500, 1000),
        "num_nodes": 4000,
        "num_trials": 10,
    },
    "fig10": {
        "datasets": ("facebook", "wiki", "hepph", "enron"),
        "thetas": (10, 50, 100, 250, 500, 1000),
        "num_nodes": 4000,
        "num_trials": 10,
    },
    "fig11": {"dataset": "facebook", "user_counts": (500, 1000, 2000, 3000, 4000), "epsilon": 2.0},
    "fig12": {"user_counts": (500, 1000, 2000, 3000, 4000), "epsilon": 2.0},
    # (extension) streaming: replay the paper's default graph size as a full
    # edge stream with production-ish release/anchor cadences.
    "stream": {
        "dataset": "facebook",
        "num_nodes": 2000,
        "epsilon": 2.0,
        "release_every": 500,
        "anchor_every": 10,
        "counting_backend": "blocked",
    },
    # (extension) one instrumented release at the paper's default scale:
    # n=2000, ε=2, the fastest exact backend — what a full-fidelity traced
    # run (`repro-cargo run --trace-out ...`) should look like.
    "run": {
        "dataset": "facebook",
        "num_nodes": 2000,
        "epsilon": 2.0,
        "counting_backend": "blocked",
    },
    # (extension) empirical privacy audit: a deeper trial budget than the CI
    # gate's tuned default, on the worst-case complete graph the audit builds
    # itself (num_nodes is the complete-graph size, not a dataset cut).
    "audit": {
        "num_nodes": 12,
        "epsilon": 2.0,
        "num_trials": 2000,
    },
    # (extension) generalised statistics: the paper's default graph size and
    # ε sweep, across every built-in statistic.
    "stats": {
        "dataset": "facebook",
        "num_nodes": 2000,
        "epsilons": (0.5, 1.0, 1.5, 2.0, 2.5, 3.0),
        "statistics": ("triangles", "kstars", "4cycles"),
        "num_trials": 10,
        "counting_backend": "blocked",
    },
}

#: table3 uses None for num_nodes meaning "full original size"; map to scale 1.0
#: via the dataset loader default when the runner supports it.


def paper_scale_overrides(name: str) -> Dict[str, Any]:
    """Keyword overrides that rerun *name* at the paper's scale."""
    key = name.lower()
    if key not in PAPER_SCALE_OVERRIDES:
        raise ExperimentError(
            f"no paper-scale preset for {name!r}; available: {', '.join(PAPER_SCALE_OVERRIDES)}"
        )
    return dict(PAPER_SCALE_OVERRIDES[key])


def run_at_paper_scale(name: str, **extra_overrides: Any):
    """Run experiment *name* with the paper-scale preset (slow!).

    Any *extra_overrides* win over the preset, so
    ``run_at_paper_scale("fig5", num_trials=2)`` does a cheaper dry run with
    the paper's graph sizes.
    """
    overrides = paper_scale_overrides(name)
    overrides.update(extra_overrides)
    if overrides.get("num_nodes", 0) is None:
        overrides.pop("num_nodes")
    spec = get_experiment(name)
    return spec.run(**overrides)
