"""Core undirected graph data structure.

:class:`Graph` stores an undirected, simple (no self-loops, no multi-edges),
unattributed graph over nodes ``0 .. n-1`` as a list of adjacency sets.  It
offers the three views the rest of the library needs:

* **adjacency sets** — fast neighbour iteration for exact triangle counting,
* **adjacent bit vectors** — the per-user local view that CARGO's users hold
  (``A_i`` in the paper), and
* **dense adjacency matrix** — the numpy view used by the vectorised secure
  counting backend and by matrix-trace ground truth.

The class is deliberately mutable (edges can be added/removed) because the
projection algorithms build truncated copies of a graph, but all mutating
methods keep the symmetric-invariant: an edge is always stored in both
endpoints' adjacency sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import GraphError

Edge = Tuple[int, int]


class Graph:
    """Undirected simple graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes.  Node identifiers are the integers
        ``0 .. num_nodes - 1``.
    edges:
        Optional iterable of ``(u, v)`` pairs to insert at construction time.
        Duplicate edges and both orientations of the same edge are accepted
        and collapsed; self-loops raise :class:`~repro.exceptions.GraphError`.
    """

    def __init__(self, num_nodes: int, edges: Optional[Iterable[Edge]] = None) -> None:
        if num_nodes < 0:
            raise GraphError(f"num_nodes must be non-negative, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self._adjacency: List[Set[int]] = [set() for _ in range(self._num_nodes)]
        self._num_edges = 0
        self._triangle_count_cache: Optional[int] = None
        self._adjacency_matrix_cache: Optional[np.ndarray] = None
        self._degree_vector_cache: Optional[np.ndarray] = None
        self._csr_cache: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def nodes(self) -> range:
        """Iterable of node identifiers ``0 .. n-1``."""
        return range(self._num_nodes)

    def edges(self) -> Iterator[Edge]:
        """Yield each undirected edge exactly once as ``(u, v)`` with ``u < v``."""
        for u in range(self._num_nodes):
            for v in self._adjacency[u]:
                if u < v:
                    yield (u, v)

    def degree(self, node: int) -> int:
        """Degree of *node*."""
        self._check_node(node)
        return len(self._adjacency[node])

    def degrees(self) -> List[int]:
        """Degree of every node, indexed by node id (the set ``D`` in the paper)."""
        return [len(neighbours) for neighbours in self._adjacency]

    def degree_vector(self, copy: bool = True) -> np.ndarray:
        """Degree of every node as a length-``n`` int64 array, memoised.

        The degree vector is the *entire* graph state the degree-local
        statistics (k-stars, wedges) need, so the sparse execution path reads
        it instead of ever touching an ``n x n`` view.  The array is built
        once and invalidated by any edge mutation, exactly like
        :meth:`adjacency_matrix`; ``copy=False`` returns the read-only memo
        itself, the default returns a fresh writable copy.

        Examples
        --------
        >>> Graph(4, edges=[(0, 1), (0, 2)]).degree_vector().tolist()
        [2, 1, 1, 0]
        """
        if self._degree_vector_cache is None:
            vector = np.fromiter(
                (len(neighbours) for neighbours in self._adjacency),
                dtype=np.int64,
                count=self._num_nodes,
            )
            vector.setflags(write=False)
            self._degree_vector_cache = vector
        if copy:
            return self._degree_vector_cache.copy()
        return self._degree_vector_cache

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Compressed-sparse-row view ``(indptr, indices)``, memoised.

        ``indices[indptr[u]:indptr[u+1]]`` holds node ``u``'s neighbours in
        ascending order, so the whole topology costs ``O(n + m)`` memory —
        the representation every out-of-core path works from.  Both arrays
        are read-only views of an instance memo with the same
        mutation-invalidation contract as :meth:`adjacency_matrix`.

        Examples
        --------
        >>> indptr, indices = Graph(3, edges=[(0, 2), (1, 2)]).csr_arrays()
        >>> indptr.tolist(), indices.tolist()
        ([0, 1, 2, 4], [2, 2, 0, 1])
        """
        if self._csr_cache is None:
            degrees = self.degree_vector(copy=False)
            indptr = np.zeros(self._num_nodes + 1, dtype=np.int64)
            np.cumsum(degrees, out=indptr[1:])
            indices = np.fromiter(
                (v for neighbours in self._adjacency for v in sorted(neighbours)),
                dtype=np.int64,
                count=2 * self._num_edges,
            )
            indptr.setflags(write=False)
            indices.setflags(write=False)
            self._csr_cache = (indptr, indices)
        return self._csr_cache

    def max_degree(self) -> int:
        """True maximum degree ``d_max`` (0 for an empty graph)."""
        if self._num_nodes == 0:
            return 0
        return max(len(neighbours) for neighbours in self._adjacency)

    def neighbors(self, node: int) -> Set[int]:
        """Return a copy of the neighbour set of *node*."""
        self._check_node(node)
        return set(self._adjacency[node])

    def neighbor_view(self, node: int) -> frozenset:
        """Read-only view of *node*'s neighbours (no copy of large sets)."""
        self._check_node(node)
        return frozenset(self._adjacency[node])

    def common_neighbor_count(self, u: int, v: int, above: Optional[int] = None) -> int:
        """Number of nodes adjacent to both *u* and *v*.

        Intersects the underlying adjacency sets directly (the smaller side
        drives the intersection), so the cost is ``O(min(d_u, d_v))`` with no
        set copies — this is the per-event hot path of the streaming
        triangle maintainer.  With *above*, only common neighbours strictly
        greater than it are counted (the ``w > v`` filter the exact triangle
        counters use to count each triangle once).
        """
        self._check_node(u)
        self._check_node(v)
        common = self._adjacency[u] & self._adjacency[v]
        if above is None:
            return len(common)
        return sum(1 for w in common if w > above)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        self._check_node(u)
        self._check_node(v)
        return v in self._adjacency[u]

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> bool:
        """Insert the undirected edge ``{u, v}``.

        Returns ``True`` if the edge was newly inserted, ``False`` if it was
        already present.  Self-loops are rejected because the paper's graphs
        (and triangle semantics) are simple graphs.
        """
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u})")
        if v in self._adjacency[u]:
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._num_edges += 1
        self._invalidate_caches()
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Remove the undirected edge ``{u, v}``; return whether it existed."""
        self._check_node(u)
        self._check_node(v)
        if v not in self._adjacency[u]:
            return False
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._num_edges -= 1
        self._invalidate_caches()
        return True

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        clone = Graph(self._num_nodes)
        clone._adjacency = [set(neighbours) for neighbours in self._adjacency]
        clone._num_edges = self._num_edges
        clone._triangle_count_cache = self._triangle_count_cache
        clone._adjacency_matrix_cache = self._adjacency_matrix_cache
        clone._degree_vector_cache = self._degree_vector_cache
        clone._csr_cache = self._csr_cache
        return clone

    # ------------------------------------------------------------------ #
    # Derived-quantity caching
    # ------------------------------------------------------------------ #
    def _invalidate_caches(self) -> None:
        """Drop every memoised derived quantity after an edge mutation."""
        self._triangle_count_cache = None
        self._adjacency_matrix_cache = None
        self._degree_vector_cache = None
        self._csr_cache = None

    @property
    def cached_triangle_count(self) -> Optional[int]:
        """Memoised exact triangle count, or ``None`` if not computed yet.

        :func:`repro.graph.triangles.count_triangles` populates this so that
        repeated evaluation trials on the same (immutable-in-practice) graph
        stop recomputing the ground truth; any mutation invalidates it.
        """
        return self._triangle_count_cache

    @cached_triangle_count.setter
    def cached_triangle_count(self, value: Optional[int]) -> None:
        self._triangle_count_cache = None if value is None else int(value)

    # ------------------------------------------------------------------ #
    # Views used by the protocol
    # ------------------------------------------------------------------ #
    def adjacency_bit_vector(self, node: int) -> np.ndarray:
        """The adjacent bit vector ``A_i`` of *node* as a length-``n`` 0/1 array."""
        self._check_node(node)
        row = np.zeros(self._num_nodes, dtype=np.int64)
        neighbours = list(self._adjacency[node])
        if neighbours:
            row[np.asarray(neighbours, dtype=np.int64)] = 1
        return row

    def adjacency_matrix(self, copy: bool = True) -> np.ndarray:
        """Dense symmetric 0/1 adjacency matrix ``A`` (``n x n`` int64).

        Built with one flattened scatter (row/column index arrays assembled
        via :func:`numpy.fromiter`) rather than one fancy-indexing pass per
        row, which keeps construction cheap for the large ``n`` the blocked
        secure-counting backend targets.

        Callers that repeatedly need the dense view of an unchanged graph
        (evaluation trials, streaming anchors) pass ``copy=False`` to get a
        read-only view that is memoised on the instance and invalidated by
        any edge mutation, paying for the scatter once.  The default
        ``copy=True`` returns a fresh writable matrix and — unless the memo
        already exists — does *not* retain it, so one-shot callers never pin
        ``O(n²)`` memory on the graph.
        """
        if self._adjacency_matrix_cache is not None:
            if copy:
                return self._adjacency_matrix_cache.copy()
            return self._adjacency_matrix_cache
        n = self._num_nodes
        matrix = np.zeros((n, n), dtype=np.int64)
        if self._num_edges:
            degrees = np.fromiter(
                (len(neighbours) for neighbours in self._adjacency),
                dtype=np.int64,
                count=n,
            )
            cols = np.fromiter(
                (v for neighbours in self._adjacency for v in neighbours),
                dtype=np.int64,
                count=2 * self._num_edges,
            )
            rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
            matrix[rows, cols] = 1
        if not copy:
            matrix.setflags(write=False)
            self._adjacency_matrix_cache = matrix
        return matrix

    def adjacency_lists(self) -> List[List[int]]:
        """Sorted adjacency lists (useful for deterministic serialisation)."""
        return [sorted(neighbours) for neighbours in self._adjacency]

    def edge_list(self) -> List[Edge]:
        """All edges as a sorted list of ``(u, v)`` with ``u < v``."""
        return sorted(self.edges())

    # ------------------------------------------------------------------ #
    # Derived graphs
    # ------------------------------------------------------------------ #
    def subgraph(self, nodes: Sequence[int]) -> "Graph":
        """Induced subgraph on *nodes*, relabelled to ``0 .. len(nodes)-1``.

        The relabelling preserves the order of *nodes*; experiments that vary
        the number of users ``n`` use this to take the first-``n`` induced
        subgraph of a dataset, matching the paper's evaluation setup.
        """
        index_of: Dict[int, int] = {}
        for new_id, old_id in enumerate(nodes):
            self._check_node(old_id)
            if old_id in index_of:
                raise GraphError(f"duplicate node {old_id} in subgraph selection")
            index_of[old_id] = new_id
        sub = Graph(len(nodes))
        for old_u, new_u in index_of.items():
            for old_v in self._adjacency[old_u]:
                new_v = index_of.get(old_v)
                if new_v is not None and new_u < new_v:
                    sub.add_edge(new_u, new_v)
        return sub

    @classmethod
    def from_adjacency_matrix(cls, matrix: np.ndarray) -> "Graph":
        """Build a graph from a symmetric 0/1 matrix.

        The matrix must be square and symmetric with a zero diagonal; any
        non-zero entry is treated as an edge.
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise GraphError(f"adjacency matrix must be square, got {matrix.shape}")
        if np.any(np.diag(matrix) != 0):
            raise GraphError("adjacency matrix must have a zero diagonal")
        if not np.array_equal(matrix, matrix.T):
            raise GraphError("adjacency matrix must be symmetric")
        n = matrix.shape[0]
        graph = cls(n)
        rows, cols = np.nonzero(np.triu(matrix, k=1))
        for u, v in zip(rows.tolist(), cols.tolist()):
            graph.add_edge(int(u), int(v))
        return graph

    @classmethod
    def from_edge_list(cls, num_nodes: int, edges: Iterable[Edge]) -> "Graph":
        """Build a graph from an explicit node count and an edge iterable."""
        return cls(num_nodes, edges)

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and self._adjacency == other._adjacency
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(num_nodes={self._num_nodes}, num_edges={self._num_edges})"

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise GraphError(
                f"node {node} is out of range for a graph with {self._num_nodes} nodes"
            )
