"""Edge-list input/output.

The on-disk format is the whitespace-separated edge list used by SNAP
(``u v`` per line, ``#`` comments allowed), so real SNAP downloads can be
dropped in as a replacement for the synthetic datasets without code changes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.exceptions import DatasetError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def read_edge_list(
    path: PathLike,
    num_nodes: Optional[int] = None,
    relabel: bool = True,
) -> Graph:
    """Read an undirected graph from a SNAP-style edge list file.

    Parameters
    ----------
    path:
        File containing one ``u v`` pair per line; lines starting with ``#``
        are ignored.  Directed duplicates (both ``u v`` and ``v u``) collapse
        into one undirected edge, matching the paper's preprocessing.
    num_nodes:
        Optional explicit node count.  Required when *relabel* is ``False``
        and the file may omit isolated nodes.
    relabel:
        When ``True`` (default) node identifiers are compacted to
        ``0 .. n-1`` in order of first appearance, which is what the
        synthetic datasets and the experiments expect.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list file not found: {path}")

    raw_edges = []
    max_seen = -1
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer node id in {stripped!r}"
                ) from exc
            if u == v:
                continue  # SNAP files occasionally contain self-loops; drop them.
            raw_edges.append((u, v))
            max_seen = max(max_seen, u, v)

    if relabel:
        index_of: dict[int, int] = {}
        edges = []
        for u, v in raw_edges:
            for node in (u, v):
                if node not in index_of:
                    index_of[node] = len(index_of)
            edges.append((index_of[u], index_of[v]))
        n = num_nodes if num_nodes is not None else len(index_of)
        if n < len(index_of):
            raise DatasetError(
                f"num_nodes={n} is smaller than the {len(index_of)} distinct nodes in {path}"
            )
        return Graph(n, edges)

    n = num_nodes if num_nodes is not None else max_seen + 1
    return Graph(n, raw_edges)


def write_edge_list(graph: Graph, path: PathLike, header: Optional[str] = None) -> None:
    """Write *graph* as a SNAP-style edge list (one ``u v`` pair per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
