"""Edge-list input/output.

The on-disk format is the whitespace-separated edge list used by SNAP
(``u v`` per line, ``#`` comments allowed), so real SNAP downloads can be
dropped in as a replacement for the synthetic datasets without code changes.

All readers are *streaming*: the file is consumed line by line through
:func:`iter_edge_list`, and nothing here ever materialises a dense ``n x n``
view — peak memory is ``O(m)`` for graph construction and ``O(n + m)`` for
:func:`read_degree_vector`, which skips building a :class:`Graph` entirely
(the input the sparse degree-local release path needs).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.graph import Graph

PathLike = Union[str, Path]


def iter_edge_list(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Stream the ``(u, v)`` pairs of a SNAP-style edge list, one at a time.

    Lines starting with ``#`` and self-loops are skipped (SNAP files
    occasionally contain self-loops); malformed lines raise
    :class:`~repro.exceptions.DatasetError` with the offending line number.
    Duplicate edges and both orientations are yielded as-is — deduplication
    is the consumer's job (``Graph`` collapses them on insertion).
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list file not found: {path}")
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer node id in {stripped!r}"
                ) from exc
            if u == v:
                continue
            yield u, v


def read_edge_list(
    path: PathLike,
    num_nodes: Optional[int] = None,
    relabel: bool = True,
) -> Graph:
    """Read an undirected graph from a SNAP-style edge list file.

    Parameters
    ----------
    path:
        File containing one ``u v`` pair per line; lines starting with ``#``
        are ignored.  Directed duplicates (both ``u v`` and ``v u``) collapse
        into one undirected edge, matching the paper's preprocessing.
    num_nodes:
        Optional explicit node count.  Required when *relabel* is ``False``
        and the file may omit isolated nodes.
    relabel:
        When ``True`` (default) node identifiers are compacted to
        ``0 .. n-1`` in order of first appearance, which is what the
        synthetic datasets and the experiments expect.
    """
    raw_edges = []
    max_seen = -1
    if relabel:
        index_of: dict[int, int] = {}
        for u, v in iter_edge_list(path):
            for node in (u, v):
                if node not in index_of:
                    index_of[node] = len(index_of)
            raw_edges.append((index_of[u], index_of[v]))
        n = num_nodes if num_nodes is not None else len(index_of)
        if n < len(index_of):
            raise DatasetError(
                f"num_nodes={n} is smaller than the {len(index_of)} distinct nodes in {path}"
            )
        return Graph(n, raw_edges)

    for u, v in iter_edge_list(path):
        raw_edges.append((u, v))
        max_seen = max(max_seen, u, v)
    n = num_nodes if num_nodes is not None else max_seen + 1
    return Graph(n, raw_edges)


def read_degree_vector(
    path: PathLike,
    num_nodes: Optional[int] = None,
    relabel: bool = True,
) -> np.ndarray:
    """Degree vector of an edge-list file without building a :class:`Graph`.

    One streaming pass; duplicate orientations are collapsed through an
    ``O(m)`` edge set, so peak memory is ``O(n + m)`` — no adjacency sets,
    no dense matrix.  The degree vector is all the state the degree-local
    statistics (k-stars, wedges) need, so a sparse release over a very large
    on-disk graph can start here.
    """
    seen: set = set()
    degrees: dict[int, int] = {}
    index_of: dict[int, int] = {}
    max_seen = -1
    for u, v in iter_edge_list(path):
        if relabel:
            for node in (u, v):
                if node not in index_of:
                    index_of[node] = len(index_of)
            u, v = index_of[u], index_of[v]
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        degrees[u] = degrees.get(u, 0) + 1
        degrees[v] = degrees.get(v, 0) + 1
        max_seen = max(max_seen, u, v)
    n = num_nodes if num_nodes is not None else max_seen + 1
    if n < max_seen + 1:
        raise DatasetError(
            f"num_nodes={n} is smaller than the {max_seen + 1} distinct nodes in {path}"
        )
    vector = np.zeros(max(n, 0), dtype=np.int64)
    for node, degree in degrees.items():
        vector[node] = degree
    return vector


def write_edge_list(graph: Graph, path: PathLike, header: Optional[str] = None) -> None:
    """Write *graph* as a SNAP-style edge list (one ``u v`` pair per line).

    Edges are emitted in CSR order (ascending ``u``, then ascending ``v``),
    so the output is deterministic for equal graphs.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    indptr, indices = graph.csr_arrays()
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.num_nodes} edges: {graph.num_edges}\n")
        for u in range(graph.num_nodes):
            for v in indices[indptr[u] : indptr[u + 1]]:
                if u < v:
                    handle.write(f"{u} {v}\n")
