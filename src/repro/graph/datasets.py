"""Synthetic stand-ins for the SNAP datasets used in the paper.

The paper evaluates on four SNAP graphs (Facebook, Wiki-Vote, HepPh, Enron;
Table IV) and five more for the sensitivity comparison in Table III (CondMat,
AstroPh, HepPh, HepTh, GrQc).  This environment has no network access, so the
registry below generates deterministic synthetic graphs whose *shape* matches
the originals on the axes that drive every experiment in the paper:

* a heavy-tailed degree distribution with a large maximum degree,
* high clustering (many triangles, triangle homogeneity), and
* the original edge density at a configurable scale of the node count.

All graphs are produced by the Holme–Kim power-law-cluster model with the
``edges_per_node`` chosen to match the original average degree and a high
triangle-closure probability.  The default ``scale`` keeps generation and the
O(n^3) faithful secure-count tractable on a laptop; ``scale=1.0`` reproduces
the full node counts if you have the patience.

Real SNAP edge lists can still be used: pass a directory of ``<name>.txt``
files to :func:`load_dataset` via ``edge_list_dir`` and the synthetic
generation is bypassed entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.exceptions import DatasetError
from repro.graph.generators import powerlaw_cluster_graph
from repro.graph.graph import Graph
from repro.graph.io import read_edge_list
from repro.utils.rng import stable_seed_from_name


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset and the parameters of its synthetic stand-in.

    Attributes
    ----------
    name:
        Registry key (lower-case, e.g. ``"facebook"``).
    num_nodes:
        Node count of the original SNAP graph (|V| in Table IV).
    num_edges:
        Edge count of the original SNAP graph (|E| in Table IV).
    max_degree:
        Maximum degree of the original graph (d_max in Table IV).
    domain:
        The domain label reported in Table IV.
    edges_per_node:
        Holme–Kim attachment parameter for the synthetic version, chosen so
        the synthetic average degree approximates ``num_edges / num_nodes``.
    triangle_probability:
        Holme–Kim triad-closure probability; high values give the strong
        clustering these real graphs exhibit.
    """

    name: str
    num_nodes: int
    num_edges: int
    max_degree: int
    domain: str
    edges_per_node: int
    triangle_probability: float

    def scaled_nodes(self, scale: float) -> int:
        """Node count at the requested *scale* (at least ``edges_per_node + 2``)."""
        return max(int(round(self.num_nodes * scale)), self.edges_per_node + 2)


#: The datasets used in the paper's evaluation (Table IV) and Table III.
DATASET_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        # Table IV — main evaluation graphs.
        DatasetSpec("facebook", 4_039, 88_234, 1_045, "social network", 22, 0.85),
        DatasetSpec("wiki", 7_115, 103_689, 1_167, "vote network", 15, 0.55),
        DatasetSpec("hepph", 12_008, 118_521, 982, "citation network", 10, 0.75),
        DatasetSpec("enron", 36_692, 183_831, 2_766, "communication network", 5, 0.65),
        # Table III — sensitivity-comparison graphs.
        DatasetSpec("condmat", 23_133, 93_497, 279, "collaboration network", 4, 0.70),
        DatasetSpec("astroph", 18_772, 198_110, 504, "collaboration network", 11, 0.70),
        DatasetSpec("hepth", 9_877, 25_998, 65, "collaboration network", 3, 0.60),
        DatasetSpec("grqc", 5_242, 14_496, 81, "collaboration network", 3, 0.70),
    )
}

#: Default fraction of the original node count used when generating synthetic
#: stand-ins.  Chosen so the largest graph stays small enough for the secure
#: protocols to run in CI while preserving the relative graph sizes.
DEFAULT_SCALE = 0.25


def available_datasets() -> list[str]:
    """Names of all registered datasets, in registry order."""
    return list(DATASET_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Return the :class:`DatasetSpec` registered under *name* (case-insensitive)."""
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_REGISTRY)}"
        )
    return DATASET_REGISTRY[key]


def load_dataset(
    name: str,
    scale: float = DEFAULT_SCALE,
    num_nodes: Optional[int] = None,
    seed: Optional[int] = None,
    edge_list_dir: Optional[str] = None,
) -> Graph:
    """Load (or synthesise) the dataset registered under *name*.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"facebook"`` or ``"enron"``.
    scale:
        Fraction of the original node count to generate (ignored when
        *num_nodes* is given or a real edge list is found).  ``1.0``
        reproduces the full size of the original graph.
    num_nodes:
        Explicit node count override; takes precedence over *scale*.
    seed:
        Optional extra seed mixed into the dataset's deterministic seed.
        By default the same name always produces the same graph.
    edge_list_dir:
        If given and ``<edge_list_dir>/<name>.txt`` exists, the real edge
        list is read instead of generating a synthetic graph.
    """
    spec = dataset_spec(name)

    if edge_list_dir is not None:
        candidate = Path(edge_list_dir) / f"{spec.name}.txt"
        if candidate.exists():
            return read_edge_list(candidate)
        raise DatasetError(f"edge list for {name!r} not found at {candidate}")

    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    target_nodes = num_nodes if num_nodes is not None else spec.scaled_nodes(scale)
    if target_nodes <= spec.edges_per_node:
        raise DatasetError(
            f"num_nodes={target_nodes} is too small for dataset {name!r} "
            f"(needs > {spec.edges_per_node})"
        )
    graph_seed = stable_seed_from_name(spec.name, base_seed=seed)
    return powerlaw_cluster_graph(
        num_nodes=target_nodes,
        edges_per_node=spec.edges_per_node,
        triangle_probability=spec.triangle_probability,
        seed=graph_seed,
    )
