"""Graph substrate: data structures, generators, datasets, and exact counts.

The CARGO protocol operates on an undirected, unattributed graph in which
each user holds one row of the adjacency matrix (her *adjacent bit vector*).
This subpackage provides everything the protocol and the baselines need from
the graph world:

* :class:`~repro.graph.graph.Graph` — the core adjacency-set structure with
  bit-vector and matrix views,
* exact triangle counting (:mod:`repro.graph.triangles`) used as ground truth,
* random graph generators (:mod:`repro.graph.generators`),
* deterministic synthetic stand-ins for the SNAP datasets used in the paper
  (:mod:`repro.graph.datasets`),
* degree / clustering statistics (:mod:`repro.graph.statistics`),
* edge-list IO (:mod:`repro.graph.io`).
"""

from repro.graph.graph import Graph
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
    sparse_random_graph,
    stochastic_block_model_graph,
    watts_strogatz_graph,
)
from repro.graph.datasets import (
    DATASET_REGISTRY,
    DatasetSpec,
    available_datasets,
    load_dataset,
)
from repro.graph.triangles import (
    count_triangles,
    count_triangles_edge_iterator,
    count_triangles_matrix,
    count_triangles_node_iterator,
    local_triangle_counts,
)
from repro.graph.statistics import (
    average_clustering_coefficient,
    degree_histogram,
    degree_sequence,
    global_clustering_coefficient,
    graph_summary,
    maximum_degree,
)
from repro.graph.io import (
    iter_edge_list,
    read_degree_vector,
    read_edge_list,
    write_edge_list,
)

__all__ = [
    "Graph",
    "barabasi_albert_graph",
    "erdos_renyi_graph",
    "powerlaw_cluster_graph",
    "random_regular_graph",
    "sparse_random_graph",
    "stochastic_block_model_graph",
    "watts_strogatz_graph",
    "DATASET_REGISTRY",
    "DatasetSpec",
    "available_datasets",
    "load_dataset",
    "count_triangles",
    "count_triangles_edge_iterator",
    "count_triangles_matrix",
    "count_triangles_node_iterator",
    "local_triangle_counts",
    "average_clustering_coefficient",
    "degree_histogram",
    "degree_sequence",
    "global_clustering_coefficient",
    "graph_summary",
    "maximum_degree",
    "iter_edge_list",
    "read_degree_vector",
    "read_edge_list",
    "write_edge_list",
]
