"""Exact (non-private) triangle counting.

These routines provide the ground truth ``T`` against which every private
estimate is scored, plus per-node triangle counts used by the clustering
coefficient and by projection-loss analysis.  Three independent algorithms
are provided so the test suite can cross-check them against each other:

* :func:`count_triangles_node_iterator` — for each node, count edges among
  its neighbours (``O(sum_i d_i^2)``),
* :func:`count_triangles_edge_iterator` — for each edge, intersect the two
  endpoints' neighbourhoods (``O(sum_{(u,v)} min(d_u, d_v))``),
* :func:`count_triangles_matrix` — ``trace(A^3) / 6`` with numpy.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.graph.graph import Graph


def count_triangles(graph: Graph, use_cache: bool = True) -> int:
    """Exact number of triangles in *graph* (default: edge-iterator algorithm).

    The result is memoised on the graph instance (and invalidated by any
    edge mutation), so evaluation harnesses that score many protocol trials
    against the same ground truth pay for the exact count once.  Pass
    ``use_cache=False`` to force a recount without touching the cache.
    """
    if use_cache:
        cached = graph.cached_triangle_count
        if cached is not None:
            return cached
    count = count_triangles_edge_iterator(graph)
    if use_cache:
        graph.cached_triangle_count = count
    return count


def count_triangles_node_iterator(graph: Graph) -> int:
    """Count triangles by checking, per node, which neighbour pairs are adjacent.

    Each triangle ``{u, v, w}`` is discovered exactly once by only counting
    pairs ``v < w`` from the neighbourhood of the smallest-id node ``u``.
    """
    total = 0
    for u in graph.nodes():
        neighbours = sorted(w for w in graph.neighbor_view(u) if w > u)
        for i, v in enumerate(neighbours):
            v_neighbours = graph.neighbor_view(v)
            for w in neighbours[i + 1 :]:
                if w in v_neighbours:
                    total += 1
    return total


def count_triangles_edge_iterator(graph: Graph) -> int:
    """Count triangles by intersecting endpoint neighbourhoods per edge.

    Every triangle contains three edges and is therefore counted three times;
    restricting the common neighbour ``w`` to ``w > v > u`` makes each
    triangle count exactly once instead.  The filtered intersection runs
    copy-free through :meth:`~repro.graph.graph.Graph.common_neighbor_count`.
    """
    total = 0
    for u, v in graph.edges():
        total += graph.common_neighbor_count(u, v, above=v)
    return total


def count_triangles_matrix(graph: Graph) -> int:
    """Count triangles as ``trace(A^3) / 6`` using the dense adjacency matrix.

    Suitable for graphs up to a few thousand nodes; used by tests as an
    independent oracle and by the vectorised secure backend as its plaintext
    reference.
    """
    matrix = graph.adjacency_matrix(copy=False)
    if matrix.shape[0] == 0:
        return 0
    cube_trace = int(np.trace(matrix @ matrix @ matrix))
    return cube_trace // 6


def local_triangle_counts(graph: Graph) -> List[int]:
    """Number of triangles incident to each node.

    ``sum(local) == 3 * T`` because each triangle touches three nodes.  Used
    by the clustering-coefficient statistics and by projection analysis.
    """
    counts = [0] * graph.num_nodes
    for u, v in graph.edges():
        common = graph.neighbor_view(u) & graph.neighbor_view(v)
        for w in common:
            if w > v:
                counts[u] += 1
                counts[v] += 1
                counts[w] += 1
    return counts


def triangles_per_edge(graph: Graph) -> Dict[tuple, int]:
    """Number of triangles supported by each edge ``(u, v)`` with ``u < v``.

    The similarity-projection analysis uses this to reason about which edge
    deletions are cheap (support few triangles) versus expensive.
    """
    support: Dict[tuple, int] = {edge: 0 for edge in graph.edges()}
    for u, v in graph.edges():
        common = graph.neighbor_view(u) & graph.neighbor_view(v)
        for w in common:
            if w > v:
                for a, b in ((u, v), (u, w), (v, w)):
                    support[(a, b) if a < b else (b, a)] += 1
    return support
