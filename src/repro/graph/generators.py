"""Random graph generators.

The generators are implemented directly on :class:`~repro.graph.graph.Graph`
(not via networkx) so that the library is self-contained and fully seeded.
They cover the families needed to stand in for the paper's real-world graphs:

* :func:`erdos_renyi_graph` — G(n, p) baseline with no degree heterogeneity,
* :func:`barabasi_albert_graph` — preferential attachment, heavy-tailed
  degrees but few triangles,
* :func:`powerlaw_cluster_graph` — Holme–Kim model: preferential attachment
  plus triad closure, giving both heavy-tailed degrees *and* high clustering
  (the combination exhibited by social / citation / communication graphs),
* :func:`watts_strogatz_graph` — small-world ring rewiring, very high
  clustering, near-uniform degrees,
* :func:`stochastic_block_model_graph` — community structure,
* :func:`random_regular_graph` — constant degree (useful for worst cases in
  tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graph.graph import Graph
from repro.utils.rng import RandomState, derive_rng
from repro.utils.validation import check_in_range, check_probability, check_positive


def erdos_renyi_graph(num_nodes: int, edge_probability: float, seed: RandomState = None) -> Graph:
    """G(n, p): each of the ``n*(n-1)/2`` possible edges appears independently."""
    check_probability("edge_probability", edge_probability)
    if num_nodes < 0:
        raise ConfigurationError(f"num_nodes must be non-negative, got {num_nodes}")
    rng = derive_rng(seed)
    graph = Graph(num_nodes)
    if num_nodes < 2 or edge_probability == 0.0:
        return graph
    # Vectorised upper-triangular Bernoulli draw keeps generation fast for the
    # graph sizes used in benchmarks (a few thousand nodes).
    upper = np.triu(rng.random((num_nodes, num_nodes)) < edge_probability, k=1)
    rows, cols = np.nonzero(upper)
    for u, v in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(int(u), int(v))
    return graph


def sparse_random_graph(
    num_nodes: int, num_edges: int, seed: RandomState = None
) -> Graph:
    """Uniform random graph with exactly *num_edges* edges in ``O(m)`` memory.

    The G(n, p) generator above draws the full ``n x n`` Bernoulli matrix,
    which stops being viable past a few thousand nodes.  This generator
    samples endpoint pairs directly (rejecting self-loops and duplicates),
    so a 100k-node sparse graph costs memory proportional to its edge count
    — the scale the sparse release path and the out-of-core benchmarks run
    at.  The result is distributed as G(n, m).

    Examples
    --------
    >>> graph = sparse_random_graph(1000, 4000, seed=7)
    >>> (graph.num_nodes, graph.num_edges)
    (1000, 4000)
    """
    if num_nodes < 0:
        raise ConfigurationError(f"num_nodes must be non-negative, got {num_nodes}")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges < 0 or num_edges > max_edges:
        raise ConfigurationError(
            f"num_edges must be in [0, {max_edges}] for {num_nodes} nodes, "
            f"got {num_edges}"
        )
    rng = derive_rng(seed)
    graph = Graph(num_nodes)
    if num_edges == 0:
        return graph
    remaining = num_edges
    while remaining > 0:
        # Batched rejection sampling: draw ~15% extra pairs per round so the
        # typical sparse case finishes in one or two vectorised draws.
        batch = int(remaining * 1.15) + 16
        endpoints = rng.integers(0, num_nodes, size=(batch, 2))
        for u, v in endpoints.tolist():
            if u == v:
                continue
            if graph.add_edge(u, v):
                remaining -= 1
                if remaining == 0:
                    break
    return graph


def barabasi_albert_graph(num_nodes: int, edges_per_node: int, seed: RandomState = None) -> Graph:
    """Barabási–Albert preferential attachment with *edges_per_node* new edges."""
    check_positive("edges_per_node", edges_per_node)
    if num_nodes < edges_per_node + 1:
        raise ConfigurationError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})"
        )
    rng = derive_rng(seed)
    graph = Graph(num_nodes)
    # Start from a star over the first m+1 nodes so every node has degree >= 1.
    repeated_nodes: List[int] = []
    for node in range(1, edges_per_node + 1):
        graph.add_edge(0, node)
        repeated_nodes.extend((0, node))
    for new_node in range(edges_per_node + 1, num_nodes):
        targets: set[int] = set()
        while len(targets) < edges_per_node:
            candidate = repeated_nodes[int(rng.integers(len(repeated_nodes)))]
            if candidate != new_node:
                targets.add(candidate)
        for target in targets:
            graph.add_edge(new_node, target)
            repeated_nodes.extend((new_node, target))
    return graph


def powerlaw_cluster_graph(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float,
    seed: RandomState = None,
) -> Graph:
    """Holme–Kim power-law cluster model.

    Like Barabási–Albert, but after each preferential-attachment edge the new
    node closes a triangle with probability *triangle_probability* by also
    linking to a random neighbour of the node it just attached to.  This is
    the workhorse generator for the synthetic SNAP stand-ins because it
    produces both a heavy-tailed degree distribution (large ``d_max``) and a
    large triangle count.
    """
    check_positive("edges_per_node", edges_per_node)
    check_probability("triangle_probability", triangle_probability)
    if num_nodes < edges_per_node + 1:
        raise ConfigurationError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})"
        )
    rng = derive_rng(seed)
    graph = Graph(num_nodes)
    repeated_nodes: List[int] = []
    for node in range(1, edges_per_node + 1):
        graph.add_edge(0, node)
        repeated_nodes.extend((0, node))
    for new_node in range(edges_per_node + 1, num_nodes):
        added = 0
        while added < edges_per_node:
            candidate = repeated_nodes[int(rng.integers(len(repeated_nodes)))]
            if candidate == new_node or graph.has_edge(new_node, candidate):
                continue
            graph.add_edge(new_node, candidate)
            repeated_nodes.extend((new_node, candidate))
            added += 1
            # Triad-closure step: try to close a triangle through `candidate`.
            if added < edges_per_node and rng.random() < triangle_probability:
                neighbours = [
                    w
                    for w in graph.neighbor_view(candidate)
                    if w != new_node and not graph.has_edge(new_node, w)
                ]
                if neighbours:
                    friend = neighbours[int(rng.integers(len(neighbours)))]
                    graph.add_edge(new_node, friend)
                    repeated_nodes.extend((new_node, friend))
                    added += 1
    return graph


def watts_strogatz_graph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    seed: RandomState = None,
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice with random rewiring)."""
    check_probability("rewire_probability", rewire_probability)
    if nearest_neighbors % 2 != 0:
        raise ConfigurationError(
            f"nearest_neighbors must be even, got {nearest_neighbors}"
        )
    if nearest_neighbors >= num_nodes:
        raise ConfigurationError(
            f"nearest_neighbors ({nearest_neighbors}) must be < num_nodes ({num_nodes})"
        )
    rng = derive_rng(seed)
    graph = Graph(num_nodes)
    half = nearest_neighbors // 2
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            graph.add_edge(node, (node + offset) % num_nodes)
    # Rewire each original lattice edge with the requested probability.
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            neighbour = (node + offset) % num_nodes
            if rng.random() < rewire_probability:
                candidates = [
                    w
                    for w in range(num_nodes)
                    if w != node and not graph.has_edge(node, w)
                ]
                if candidates and graph.has_edge(node, neighbour):
                    new_neighbour = candidates[int(rng.integers(len(candidates)))]
                    graph.remove_edge(node, neighbour)
                    graph.add_edge(node, new_neighbour)
    return graph


def stochastic_block_model_graph(
    block_sizes: Sequence[int],
    intra_probability: float,
    inter_probability: float,
    seed: RandomState = None,
) -> Graph:
    """Stochastic block model with uniform intra- and inter-block densities."""
    check_probability("intra_probability", intra_probability)
    check_probability("inter_probability", inter_probability)
    if any(size <= 0 for size in block_sizes):
        raise ConfigurationError("every block size must be positive")
    rng = derive_rng(seed)
    num_nodes = int(sum(block_sizes))
    block_of = np.zeros(num_nodes, dtype=np.int64)
    start = 0
    for block_id, size in enumerate(block_sizes):
        block_of[start : start + size] = block_id
        start += size
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            probability = (
                intra_probability if block_of[u] == block_of[v] else inter_probability
            )
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def random_regular_graph(num_nodes: int, degree: int, seed: RandomState = None) -> Graph:
    """Random *degree*-regular graph via the configuration (pairing) model.

    Retries the pairing until a simple graph is produced; for the modest sizes
    used in tests this terminates quickly.
    """
    check_in_range("degree", degree, low=0)
    if (num_nodes * degree) % 2 != 0:
        raise ConfigurationError("num_nodes * degree must be even")
    if degree >= num_nodes:
        raise ConfigurationError(
            f"degree ({degree}) must be smaller than num_nodes ({num_nodes})"
        )
    rng = derive_rng(seed)
    for _ in range(1000):
        stubs = np.repeat(np.arange(num_nodes), degree)
        rng.shuffle(stubs)
        graph = Graph(num_nodes)
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u == v or graph.has_edge(u, v):
                ok = False
                break
            graph.add_edge(u, v)
        if ok:
            return graph
    raise ConfigurationError(
        f"failed to realise a simple {degree}-regular graph on {num_nodes} nodes"
    )
