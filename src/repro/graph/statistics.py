"""Descriptive graph statistics.

These are the quantities reported in the paper's Table IV (dataset overview)
and the downstream analytics that motivate triangle counting in the first
place (clustering coefficient, transitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.graph import Graph
from repro.graph.triangles import count_triangles, local_triangle_counts


def degree_sequence(graph: Graph) -> List[int]:
    """Degrees of all nodes sorted in non-increasing order."""
    return sorted(graph.degrees(), reverse=True)


def maximum_degree(graph: Graph) -> int:
    """True maximum degree ``d_max``."""
    return graph.max_degree()


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Mapping ``degree -> number of nodes with that degree``."""
    histogram: Dict[int, int] = {}
    for degree in graph.degrees():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Mean node degree (0.0 for the empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def global_clustering_coefficient(graph: Graph) -> float:
    """Transitivity: ``3 * triangles / number of connected triples``.

    Returns 0.0 when the graph has no path of length two (no wedges).
    """
    wedges = sum(degree * (degree - 1) // 2 for degree in graph.degrees())
    if wedges == 0:
        return 0.0
    return 3.0 * count_triangles(graph) / wedges


def average_clustering_coefficient(graph: Graph) -> float:
    """Mean of the per-node clustering coefficients (nodes of degree < 2 count 0)."""
    if graph.num_nodes == 0:
        return 0.0
    local = local_triangle_counts(graph)
    total = 0.0
    for node in graph.nodes():
        degree = graph.degree(node)
        if degree >= 2:
            total += 2.0 * local[node] / (degree * (degree - 1))
    return total / graph.num_nodes


@dataclass(frozen=True)
class GraphSummary:
    """Compact bundle of the statistics reported per dataset (Table IV)."""

    num_nodes: int
    num_edges: int
    max_degree: int
    average_degree: float
    triangle_count: int
    global_clustering: float

    def as_dict(self) -> Dict[str, float]:
        """Dictionary form for table rendering and JSON export."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "max_degree": self.max_degree,
            "average_degree": self.average_degree,
            "triangle_count": self.triangle_count,
            "global_clustering": self.global_clustering,
        }


def graph_summary(graph: Graph) -> GraphSummary:
    """Compute the :class:`GraphSummary` of *graph*."""
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        average_degree=average_degree(graph),
        triangle_count=count_triangles(graph),
        global_clustering=global_clustering_coefficient(graph),
    )
