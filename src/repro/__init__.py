"""CARGO: crypto-assisted differentially private triangle counting.

Reproduction of Liu et al., "CARGO: Crypto-Assisted Differentially Private
Triangle Counting without Trusted Servers" (ICDE 2024).

The public API is organised by subpackage:

* :mod:`repro.graph` — graphs, generators, synthetic datasets, exact counts,
* :mod:`repro.crypto` — additive secret sharing and the two-server runtime,
* :mod:`repro.dp` — differential-privacy mechanisms and sensitivity analysis,
* :mod:`repro.core` — the CARGO protocol itself (Algorithms 1-5),
* :mod:`repro.baselines` — CentralLap△, Local2Rounds△ and friends,
* :mod:`repro.metrics` — l2 loss / relative error and trial aggregation,
* :mod:`repro.experiments` — the harness regenerating every table and figure,
* :mod:`repro.stats` — the subgraph-statistic registry (triangles, k-stars,
  4-cycles, derived clustering coefficient) the pipeline is generalised
  over,
* :mod:`repro.stream` — continual private statistic release over edge
  streams (incremental maintenance, binary-tree continual DP release,
  secure-count anchors),
* :mod:`repro.resilience` — fault injection, deterministic retries,
  integrity-checked persistence, and crash-safe checkpoint/resume.

Quickstart::

    from repro import Cargo, CargoConfig, load_dataset

    graph = load_dataset("facebook", num_nodes=400)
    result = Cargo(CargoConfig(epsilon=2.0, seed=7)).run(graph)
    print(result.noisy_triangle_count, result.relative_error)
"""

from repro._version import __version__
from repro.baselines import (
    CentralLaplaceTriangleCounting,
    LocalTwoRoundsTriangleCounting,
    NonPrivateTriangleCounting,
    OneRoundLdpTriangleCounting,
    RandomProjection,
)
from repro.core import (
    Cargo,
    CargoConfig,
    CargoResult,
    CountingBackend,
    MaxDegreeEstimator,
    SimilarityProjection,
)
from repro.dp import LaplaceMechanism, PrivacyBudget, RandomizedResponse
from repro.exceptions import (
    CheckpointError,
    IntegrityError,
    ReproError,
    RetryExhaustedError,
)
from repro.graph import Graph, available_datasets, count_triangles, load_dataset
from repro.metrics import l2_loss, relative_error
from repro.parallel import TripleStore, WorkerPool
from repro.resilience import FaultPlan, ResilienceConfig, RetryPolicy
from repro.stats import (
    ClusteringCoefficientRelease,
    SubgraphStatistic,
    available_statistics,
    create_statistic,
    register_statistic,
)
from repro.stream import (
    EdgeEvent,
    EdgeStream,
    IncrementalTriangleMaintainer,
    StreamingCargo,
    StreamingConfig,
    replay_stream,
)

__all__ = [
    "__version__",
    "Cargo",
    "CargoConfig",
    "CargoResult",
    "CountingBackend",
    "MaxDegreeEstimator",
    "SimilarityProjection",
    "CentralLaplaceTriangleCounting",
    "LocalTwoRoundsTriangleCounting",
    "OneRoundLdpTriangleCounting",
    "NonPrivateTriangleCounting",
    "RandomProjection",
    "LaplaceMechanism",
    "RandomizedResponse",
    "PrivacyBudget",
    "Graph",
    "load_dataset",
    "available_datasets",
    "count_triangles",
    "l2_loss",
    "relative_error",
    "TripleStore",
    "WorkerPool",
    "ReproError",
    "IntegrityError",
    "CheckpointError",
    "RetryExhaustedError",
    "FaultPlan",
    "ResilienceConfig",
    "RetryPolicy",
    "SubgraphStatistic",
    "register_statistic",
    "available_statistics",
    "create_statistic",
    "ClusteringCoefficientRelease",
    "EdgeEvent",
    "EdgeStream",
    "IncrementalTriangleMaintainer",
    "StreamingCargo",
    "StreamingConfig",
    "replay_stream",
]
