"""Utility metrics and trial aggregation."""

from repro.metrics.error import l2_loss, relative_error
from repro.metrics.aggregate import TrialAggregate, aggregate_trials, repeat_trials

__all__ = [
    "l2_loss",
    "relative_error",
    "TrialAggregate",
    "aggregate_trials",
    "repeat_trials",
]
