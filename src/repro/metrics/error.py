"""The two utility metrics used throughout the paper's evaluation.

* ``l2 loss``: ``(T - T')^2`` (Section II-A3),
* ``relative error``: ``|T - T'| / T`` for ``T != 0``.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


def l2_loss(true_value: float, estimate: float) -> float:
    """Squared error ``(T - T')^2`` between the truth and a private estimate."""
    return (float(true_value) - float(estimate)) ** 2


def relative_error(true_value: float, estimate: float) -> float:
    """Relative error ``|T - T'| / T``; the truth must be non-zero."""
    if true_value == 0:
        raise ConfigurationError("relative error is undefined for a zero true value")
    return abs(float(true_value) - float(estimate)) / abs(float(true_value))
