"""Aggregation of repeated randomized trials.

Every point in the paper's figures is an average over repeated runs of a
randomized protocol.  :func:`repeat_trials` runs a factory-supplied protocol
several times with independent seeds and :func:`aggregate_trials` condenses
the per-trial metric values into mean / median / quantiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.exceptions import ConfigurationError
from repro.utils.rng import derive_rng, spawn_rngs


@dataclass(frozen=True)
class TrialAggregate:
    """Summary statistics of one metric across repeated trials."""

    mean: float
    median: float
    minimum: float
    maximum: float
    std: float
    count: int

    def as_dict(self) -> dict:
        """Dictionary form for table rendering."""
        return {
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "count": self.count,
        }


def aggregate_trials(values: Sequence[float]) -> TrialAggregate:
    """Summarise a sequence of per-trial metric values."""
    if not values:
        raise ConfigurationError("cannot aggregate an empty sequence of trials")
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    if count % 2:
        median = ordered[count // 2]
    else:
        median = 0.5 * (ordered[count // 2 - 1] + ordered[count // 2])
    variance = sum((v - mean) ** 2 for v in ordered) / count
    return TrialAggregate(
        mean=mean,
        median=median,
        minimum=ordered[0],
        maximum=ordered[-1],
        std=math.sqrt(variance),
        count=count,
    )


def repeat_trials(
    run_once: Callable[[int], float], num_trials: int, seed: int | None = None
) -> List[float]:
    """Run *run_once* with *num_trials* independent derived seeds.

    ``run_once`` receives an integer seed and returns the metric value of one
    trial; the seeds are derived deterministically from *seed* so whole
    sweeps are reproducible.
    """
    if num_trials <= 0:
        raise ConfigurationError(f"num_trials must be positive, got {num_trials}")
    rngs = spawn_rngs(seed if seed is not None else derive_rng(None), num_trials)
    values = []
    for rng in rngs:
        trial_seed = int(rng.integers(0, 2**31 - 1))
        values.append(float(run_once(trial_seed)))
    return values
