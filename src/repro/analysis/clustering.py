"""Private clustering-coefficient (transitivity) estimation.

The global clustering coefficient is ``3 T / W`` where ``T`` is the triangle
count and ``W`` the wedge count.  :class:`PrivateClusteringAnalyzer` splits a
total budget between a CARGO triangle estimate (high sensitivity, gets most
of the budget) and a Laplace wedge estimate (low sensitivity), then forms the
plug-in ratio — the end-to-end pipeline the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.subgraphs import count_wedges, private_wedge_count
from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.exceptions import PrivacyError
from repro.graph.graph import Graph
from repro.graph.statistics import global_clustering_coefficient

#: Default share of the budget given to the triangle estimate.
DEFAULT_TRIANGLE_FRACTION = 0.8


@dataclass(frozen=True)
class PrivateClusteringResult:
    """Output of a private clustering-coefficient estimation.

    Attributes
    ----------
    clustering_coefficient:
        The private plug-in estimate ``3 T' / W'`` (clamped to ``[0, 1]``).
    noisy_triangle_count / noisy_wedge_count:
        The two private releases the estimate was formed from.
    exact_clustering_coefficient:
        Ground truth, computed in the clear for evaluation only.
    epsilon:
        Total budget consumed.
    """

    clustering_coefficient: float
    noisy_triangle_count: float
    noisy_wedge_count: float
    exact_clustering_coefficient: float
    epsilon: float

    @property
    def absolute_error(self) -> float:
        """``|estimate - exact|``."""
        return abs(self.clustering_coefficient - self.exact_clustering_coefficient)


class PrivateClusteringAnalyzer:
    """Estimate the global clustering coefficient under ε-Edge DDP.

    Parameters
    ----------
    epsilon:
        Total privacy budget for the whole analysis.
    triangle_fraction:
        Share of ε spent on the CARGO triangle estimate; the rest goes to the
        wedge count.  Triangle counting has sensitivity ``d'_max`` versus the
        wedge count's ``2 (d'_max - 1)``, but the triangle count is the much
        smaller (and noisier, relatively) quantity, so it gets the larger
        share by default.
    seed:
        Master seed for the underlying protocols.
    """

    def __init__(
        self,
        epsilon: float,
        triangle_fraction: float = DEFAULT_TRIANGLE_FRACTION,
        seed: Optional[int] = None,
    ) -> None:
        if epsilon <= 0:
            raise PrivacyError(f"epsilon must be positive, got {epsilon}")
        if not (0 < triangle_fraction < 1):
            raise PrivacyError(
                f"triangle_fraction must be in (0, 1), got {triangle_fraction}"
            )
        self._epsilon = float(epsilon)
        self._triangle_fraction = float(triangle_fraction)
        self._seed = seed

    @property
    def epsilon(self) -> float:
        """Total budget the analyzer spends."""
        return self._epsilon

    def run(self, graph: Graph) -> PrivateClusteringResult:
        """Estimate the clustering coefficient of *graph*."""
        triangle_epsilon = self._epsilon * self._triangle_fraction
        wedge_epsilon = self._epsilon - triangle_epsilon

        cargo = Cargo(CargoConfig(epsilon=triangle_epsilon, seed=self._seed))
        triangle_result = cargo.run(graph)

        noisy_wedges = private_wedge_count(
            graph,
            epsilon=wedge_epsilon,
            degree_bound=triangle_result.noisy_max_degree,
            rng=self._seed,
        )
        noisy_wedges = max(noisy_wedges, 1.0)
        estimate = 3.0 * triangle_result.noisy_triangle_count / noisy_wedges
        estimate = min(max(estimate, 0.0), 1.0)

        return PrivateClusteringResult(
            clustering_coefficient=estimate,
            noisy_triangle_count=triangle_result.noisy_triangle_count,
            noisy_wedge_count=noisy_wedges,
            exact_clustering_coefficient=global_clustering_coefficient(graph),
            epsilon=self._epsilon,
        )

    def expected_wedge_noise_scale(self, degree_bound: float) -> float:
        """Laplace scale used for the wedge release (for error budgeting)."""
        wedge_epsilon = self._epsilon * (1.0 - self._triangle_fraction)
        from repro.analysis.subgraphs import wedge_sensitivity

        return wedge_sensitivity(degree_bound) / wedge_epsilon


def exact_wedge_count(graph: Graph) -> int:
    """Convenience re-export of the exact wedge count (see :mod:`subgraphs`).

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> exact_wedge_count(Graph(3, edges=[(0, 1), (1, 2)]))
    1
    """
    return count_wedges(graph)
