"""Downstream graph analytics built on the private triangle count.

The paper motivates triangle counting through the statistics that consume it
(Section I): the clustering coefficient, the transitivity ratio, and related
subgraph counts.  This subpackage composes CARGO's private triangle count
with low-sensitivity degree statistics to release those downstream quantities
end to end under a single privacy budget:

* :mod:`repro.analysis.subgraphs` — wedge (2-star), k-star and 4-cycle
  counts with their Edge-DP sensitivities and Laplace releases,
* :mod:`repro.analysis.clustering` — private global clustering coefficient
  (transitivity) and average-degree reports that combine a CARGO triangle
  estimate with a wedge estimate under a split budget.
"""

from repro.analysis.clustering import (
    PrivateClusteringAnalyzer,
    PrivateClusteringResult,
)
from repro.analysis.subgraphs import (
    count_four_cycles,
    count_k_stars,
    count_wedges,
    four_cycle_sensitivity,
    k_star_sensitivity,
    private_four_cycle_count,
    private_k_star_count,
    private_wedge_count,
    wedge_sensitivity,
)

__all__ = [
    "PrivateClusteringAnalyzer",
    "PrivateClusteringResult",
    "count_wedges",
    "count_k_stars",
    "count_four_cycles",
    "wedge_sensitivity",
    "k_star_sensitivity",
    "four_cycle_sensitivity",
    "private_wedge_count",
    "private_k_star_count",
    "private_four_cycle_count",
]
