"""Wedge, k-star and 4-cycle counting with Edge-DP releases.

A *wedge* (2-star) is a path of length two; a *k-star* is a node together
with ``k`` of its neighbours; a *4-cycle* is a quadrilateral.  The wedge and
k-star counts are the denominators of the clustering coefficient and
transitivity ratio and have much lower sensitivity than the triangle count,
so they are released with a plain Laplace mechanism:

* adding/removing one edge ``{u, v}`` changes the number of k-stars by at
  most ``C(d_u, k-1) + C(d_v, k-1) <= 2 * C(θ, k-1)`` on a θ-degree-bounded
  graph (for wedges, ``k = 2``, this is ``2 (θ - 1) + ... <= 2 θ``), and
  the number of 4-cycles by at most ``(θ - 1)²``.

The functions take an explicit degree bound so callers can pass CARGO's noisy
maximum degree and keep the whole analysis free of non-private quantities.
The exact counting kernels live on the statistics in :mod:`repro.stats`
(this module layers central-model Laplace releases over them); the full
two-server pipeline for the same statistics is
``Cargo(CargoConfig(statistic=...))``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.dp.mechanisms import LaplaceMechanism
from repro.exceptions import ConfigurationError, PrivacyError
from repro.graph.graph import Graph
from repro.stats.four_cycles import (
    count_four_cycles_exact,
    four_cycle_sensitivity_bounded,
)
from repro.stats.kstars import count_k_stars_exact
from repro.utils.rng import RandomState


def count_wedges(graph: Graph) -> int:
    """Exact number of wedges (paths of length two): ``sum_v C(d_v, 2)``.

    Examples
    --------
    >>> from repro.graph.graph import Graph
    >>> count_wedges(Graph(3, edges=[(0, 1), (1, 2)]))
    1
    >>> count_wedges(Graph(3, edges=[(0, 1), (1, 2), (0, 2)]))  # a triangle
    3
    """
    return count_k_stars_exact(graph.degrees(), 2)


def count_k_stars(graph: Graph, k: int) -> int:
    """Exact number of k-stars: ``sum_v C(d_v, k)``.

    Delegates to the k-star statistic's plain kernel
    (:func:`repro.stats.count_k_stars_exact`), which also validates ``k``.
    """
    return count_k_stars_exact(graph.degrees(), k)


def wedge_sensitivity(degree_bound: float) -> float:
    """Edge-DP sensitivity of the wedge count on a degree-bounded graph.

    One edge change affects the wedge counts of its two endpoints by at most
    ``(d_u - 1) + (d_v - 1) <= 2 (θ - 1)``; clamped below at 1 so noise
    scales stay positive on degenerate graphs.
    """
    if degree_bound < 0:
        raise PrivacyError(f"degree_bound must be non-negative, got {degree_bound}")
    return max(2.0 * (degree_bound - 1.0), 1.0)


def k_star_sensitivity(degree_bound: float, k: int) -> float:
    """Edge-DP sensitivity of the k-star count on a degree-bounded graph."""
    if k < 1:
        raise ConfigurationError(f"k must be at least 1, got {k}")
    if degree_bound < 0:
        raise PrivacyError(f"degree_bound must be non-negative, got {degree_bound}")
    bound = int(degree_bound)
    return max(2.0 * math.comb(max(bound - 1, 0), k - 1), 1.0)


def private_wedge_count(
    graph: Graph,
    epsilon: float,
    degree_bound: Optional[float] = None,
    rng: RandomState = None,
) -> float:
    """Release the wedge count with a Laplace mechanism under ε-Edge DP.

    When *degree_bound* is omitted the graph's true maximum degree is used —
    appropriate in the central model; pass CARGO's noisy maximum degree for a
    fully untrusted pipeline.
    """
    bound = degree_bound if degree_bound is not None else graph.max_degree()
    mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=wedge_sensitivity(bound))
    return float(mechanism.randomize(float(count_wedges(graph)), rng=rng))


def private_k_star_count(
    graph: Graph,
    k: int,
    epsilon: float,
    degree_bound: Optional[float] = None,
    rng: RandomState = None,
) -> float:
    """Release the k-star count with a Laplace mechanism under ε-Edge DP."""
    bound = degree_bound if degree_bound is not None else graph.max_degree()
    mechanism = LaplaceMechanism(
        epsilon=epsilon, sensitivity=k_star_sensitivity(bound, k)
    )
    return float(mechanism.randomize(float(count_k_stars(graph, k)), rng=rng))


def count_four_cycles(graph: Graph) -> int:
    """Exact number of 4-cycles: ``(1/4) sum_{u<v} w_uv (w_uv - 1)``.

    Delegates to the 4-cycle statistic's plain kernel
    (:func:`repro.stats.count_four_cycles_exact`); re-exported here so the
    analysis layer offers every exact count next to its private release.
    """
    return count_four_cycles_exact(graph)


def four_cycle_sensitivity(degree_bound: float) -> float:
    """Edge-DP sensitivity of the 4-cycle count on a degree-bounded graph.

    One edge flip creates or destroys at most ``(θ - 1)²`` 4-cycles (one
    further neighbour of each endpoint determines the cycle); clamped below
    at 1 so noise scales stay positive on degenerate graphs.
    """
    if degree_bound < 0:
        raise PrivacyError(f"degree_bound must be non-negative, got {degree_bound}")
    return four_cycle_sensitivity_bounded(degree_bound)


def private_four_cycle_count(
    graph: Graph,
    epsilon: float,
    degree_bound: Optional[float] = None,
    rng: RandomState = None,
) -> float:
    """Release the 4-cycle count with a Laplace mechanism under ε-Edge DP.

    When *degree_bound* is omitted the graph's true maximum degree is used —
    appropriate in the central model; pass CARGO's noisy maximum degree for
    a fully untrusted pipeline (or run the whole two-server protocol with
    ``CargoConfig(statistic="4cycles")``).
    """
    bound = degree_bound if degree_bound is not None else graph.max_degree()
    mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=four_cycle_sensitivity(bound))
    return float(mechanism.randomize(float(count_four_cycles(graph)), rng=rng))
