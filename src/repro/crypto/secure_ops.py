"""Two-server secure operations on additively shared values.

These functions implement the *online* phase of the secure computations CARGO
needs.  Each function takes the two servers' shares (never the plaintext),
consumes correlated randomness from a dealer where required, and returns the
two output shares.  An optional :class:`~repro.crypto.views.ViewRecorder`
captures exactly what each server observes, which is what the
simulation-security tests check.

* :func:`secure_add` — local addition of shares (no interaction),
* :func:`secure_multiply_pair` — Beaver-triple multiplication of two secrets,
* :func:`secure_multiply_triple` — the paper's three-way multiplication
  (Theorem 1), consuming one multiplication group,
* :func:`secure_matrix_multiply` — matrix-Beaver multiplication of two
  secret-shared matrices, the building block of the vectorised triangle
  counting backend.

Every interactive function additionally accepts an optional *authenticator*
(:class:`~repro.crypto.mac.OpeningAuthenticator`).  When present, the
opening round — the only point where values cross the wire — is routed
through its batched MAC-checked ``exchange`` instead of plain ``ring.add``
reconstruction, so a server that lies in an opening triggers a typed
:class:`~repro.exceptions.CheaterDetectedError` rather than a silently
wrong result.  Honest openings are bit-identical either way.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.crypto.beaver import BeaverTriplePair
from repro.crypto.multiplication_groups import MultiplicationGroupPair
from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.views import ViewRecorder
from repro.exceptions import ProtocolError

IntOrArray = Union[int, np.ndarray]
SharePairTuple = Tuple[IntOrArray, IntOrArray]


def secure_add(
    a_shares: SharePairTuple,
    b_shares: SharePairTuple,
    ring: Ring = DEFAULT_RING,
) -> SharePairTuple:
    """Add two shared secrets without any interaction.

    Each server adds its local shares; the sum of the results equals the sum
    of the secrets by linearity of additive sharing.
    """
    return (
        ring.add(a_shares[0], b_shares[0]),
        ring.add(a_shares[1], b_shares[1]),
    )


def secure_multiply_pair(
    a_shares: SharePairTuple,
    b_shares: SharePairTuple,
    triple: BeaverTriplePair,
    ring: Ring = DEFAULT_RING,
    views: Optional[ViewRecorder] = None,
    authenticator=None,
) -> SharePairTuple:
    """Multiply two shared secrets with one Beaver triple.

    The servers open ``e = a - x`` and ``f = b - y`` (uniformly distributed
    because ``x, y`` are fresh masks) and locally combine them with their
    triple shares.

    Examples
    --------
    >>> from repro.crypto.beaver import BeaverTripleDealer
    >>> from repro.crypto.ring import DEFAULT_RING
    >>> from repro.crypto.sharing import share_scalar
    >>> dealer = BeaverTripleDealer(seed=0)
    >>> a, b = share_scalar(6, rng=1), share_scalar(7, rng=2)
    >>> shares = secure_multiply_pair(
    ...     (a.share1, a.share2), (b.share1, b.share2), dealer.scalar_triple()
    ... )
    >>> int(DEFAULT_RING.decode_signed(DEFAULT_RING.add(*shares)))
    42
    """
    t1, t2 = triple.server1, triple.server2
    e1 = ring.sub(a_shares[0], t1.x)
    f1 = ring.sub(b_shares[0], t1.y)
    e2 = ring.sub(a_shares[1], t2.x)
    f2 = ring.sub(b_shares[1], t2.y)
    # Opening round: both servers learn e and f.
    if authenticator is not None:
        e, f = authenticator.exchange("beaver_opening", [(e1, e2), (f1, f2)])
    else:
        e = ring.add(e1, e2)
        f = ring.add(f1, f2)
    if views is not None:
        views.observe(1, "beaver_opening", (e, f))
        views.observe(2, "beaver_opening", (e, f))
    share1 = ring.add(
        ring.add(t1.z, ring.mul(e, t1.y)),
        ring.mul(f, t1.x),
    )
    share2 = ring.add(
        ring.add(
            ring.add(t2.z, ring.mul(e, t2.y)),
            ring.mul(f, t2.x),
        ),
        ring.mul(e, f),
    )
    return share1, share2


def secure_multiply_triple(
    a_shares: SharePairTuple,
    b_shares: SharePairTuple,
    c_shares: SharePairTuple,
    group: MultiplicationGroupPair,
    ring: Ring = DEFAULT_RING,
    views: Optional[ViewRecorder] = None,
    authenticator=None,
) -> SharePairTuple:
    """Multiply three shared secrets using one multiplication group.

    Implements the three-way product of Section III-D / Theorem 1 of the
    paper: open ``e = a - x``, ``f = b - y``, ``g = c - z``; then

    ``<d>_i = <w>_i + <o>_i g + <p>_i f + <q>_i e
              + <x>_i f g + <y>_i e g + <z>_i e f + (i - 1) e f g``.

    Works element-wise when the shares and the group are arrays of the same
    shape, which is how the batched faithful ``Count`` processes many
    candidate triples per opening round.
    """
    g1, g2 = group.server1, group.server2
    e1 = ring.sub(a_shares[0], g1.x)
    f1 = ring.sub(b_shares[0], g1.y)
    gg1 = ring.sub(c_shares[0], g1.z)
    e2 = ring.sub(a_shares[1], g2.x)
    f2 = ring.sub(b_shares[1], g2.y)
    gg2 = ring.sub(c_shares[1], g2.z)
    # Opening round: both servers reconstruct the masked differences.
    if authenticator is not None:
        e, f, g = authenticator.exchange(
            "mg_opening", [(e1, e2), (f1, f2), (gg1, gg2)]
        )
    else:
        e = ring.add(e1, e2)
        f = ring.add(f1, f2)
        g = ring.add(gg1, gg2)
    if views is not None:
        views.observe(1, "mg_opening", (e, f, g))
        views.observe(2, "mg_opening", (e, f, g))

    # The pairwise products of the openings are public values both servers
    # compute identically; hoist them out of the per-server combination.
    fg = ring.mul(f, g)
    eg = ring.mul(e, g)
    ef = ring.mul(e, f)

    if (
        ring.bits == 64
        and isinstance(e, np.ndarray)
        and isinstance(g1.w, np.ndarray)
        and g1.w.shape == e.shape
    ):
        # Vectorised 64-bit path: uint64 arithmetic wraps modulo 2^64
        # natively, so the combination runs in-place on two scratch buffers
        # instead of allocating one temporary per term.  Same arithmetic,
        # same openings — only the servers' local evaluation order changes.
        def local_combine(mg, include_efg: bool) -> IntOrArray:
            result = mg.w.copy()
            tmp = np.empty_like(result)
            terms = ((mg.o, g), (mg.p, f), (mg.q, e), (mg.x, fg), (mg.y, eg), (mg.z, ef))
            for coefficient, opened in terms:
                np.multiply(coefficient, opened, out=tmp)
                np.add(result, tmp, out=result)
            if include_efg:
                np.multiply(e, fg, out=tmp)
                np.add(result, tmp, out=result)
            return result

    else:

        def local_combine(mg, include_efg: bool) -> IntOrArray:
            result = mg.w
            result = ring.add(result, ring.mul(mg.o, g))
            result = ring.add(result, ring.mul(mg.p, f))
            result = ring.add(result, ring.mul(mg.q, e))
            result = ring.add(result, ring.mul(mg.x, fg))
            result = ring.add(result, ring.mul(mg.y, eg))
            result = ring.add(result, ring.mul(mg.z, ef))
            if include_efg:
                result = ring.add(result, ring.mul(e, fg))
            return result

    return local_combine(g1, include_efg=False), local_combine(g2, include_efg=True)


def secure_matrix_multiply(
    a_shares: Tuple[np.ndarray, np.ndarray],
    b_shares: Tuple[np.ndarray, np.ndarray],
    triple: BeaverTriplePair,
    ring: Ring = DEFAULT_RING,
    views: Optional[ViewRecorder] = None,
    matmul=None,
    authenticator=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Multiply two secret-shared matrices with a matrix Beaver triple.

    With a triple ``Z = X @ Y`` the servers open ``E = A - X`` and
    ``F = B - Y`` and compute shares of ``A @ B`` as
    ``<Z> + E @ <Y> + <X> @ F + (i - 1) E @ F``.

    *matmul* optionally overrides how the servers evaluate their *local*
    matrix products (the parallel engine passes a row-striped pool matmul);
    it must be bit-identical to ``ring.matmul``, so the openings — the only
    values that cross the wire — are unaffected.
    """
    a1, a2 = (np.asarray(s, dtype=ring.dtype) for s in a_shares)
    b1, b2 = (np.asarray(s, dtype=ring.dtype) for s in b_shares)
    t1, t2 = triple.server1, triple.server2
    if np.shape(t1.x) != a1.shape or np.shape(t1.y) != b1.shape:
        raise ProtocolError(
            "matrix triple shape does not match the operands: "
            f"triple {np.shape(t1.x)}@{np.shape(t1.y)}, operands {a1.shape}@{b1.shape}"
        )
    if matmul is None:
        matmul = ring.matmul
    if authenticator is not None:
        e, f = authenticator.exchange(
            "matrix_beaver_opening",
            [
                (ring.sub(a1, t1.x), ring.sub(a2, t2.x)),
                (ring.sub(b1, t1.y), ring.sub(b2, t2.y)),
            ],
        )
    else:
        e = ring.add(ring.sub(a1, t1.x), ring.sub(a2, t2.x))
        f = ring.add(ring.sub(b1, t1.y), ring.sub(b2, t2.y))
    if views is not None:
        views.observe(1, "matrix_beaver_opening", (e, f))
        views.observe(2, "matrix_beaver_opening", (e, f))
    share1 = ring.add(
        ring.add(t1.z, matmul(e, np.asarray(t1.y, dtype=ring.dtype))),
        matmul(np.asarray(t1.x, dtype=ring.dtype), f),
    )
    share2 = ring.add(
        ring.add(
            ring.add(t2.z, matmul(e, np.asarray(t2.y, dtype=ring.dtype))),
            matmul(np.asarray(t2.x, dtype=ring.dtype), f),
        ),
        matmul(e, f),
    )
    return share1, share2
