"""Beaver triples for secure two-party multiplication.

A Beaver triple is a correlated-randomness tuple ``(x, y, z)`` with
``z = x * y`` where each of ``x``, ``y``, ``z`` is additively shared between
the two servers.  Given shares of secrets ``a`` and ``b``, the servers open
the masked differences ``e = a - x`` and ``f = b - y`` (which reveal nothing,
because ``x`` and ``y`` are uniform masks) and then locally compute shares of
``a * b`` as ``<z> + e <y> + f <x> + (i - 1) e f``.

CARGO's triangle protocol needs the three-way generalisation (multiplication
groups, see :mod:`repro.crypto.multiplication_groups`); two-way triples are
still used by the vectorised matrix backend and exercised directly by tests.

The offline phase (producing the triples) is performed here by a
:class:`BeaverTripleDealer`.  In a deployment the dealer is replaced by an
OT-based two-party protocol; :mod:`repro.crypto.ot` contains a simulated OT
primitive that demonstrates the equivalence.  The substitution is recorded in
``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.sharing import SharePair, share_scalar, share_vector
from repro.exceptions import DealerError
from repro.resilience.faults import fault_point
from repro.utils.rng import RandomState, derive_rng

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class BeaverTriple:
    """One party's shares of a multiplication triple ``(x, y, z = x*y)``."""

    x: IntOrArray
    y: IntOrArray
    z: IntOrArray


@dataclass(frozen=True)
class BeaverTriplePair:
    """Both parties' shares of one triple, as produced by the dealer."""

    server1: BeaverTriple
    server2: BeaverTriple
    ring: Ring = DEFAULT_RING

    def plaintext(self) -> Tuple[IntOrArray, IntOrArray, IntOrArray]:
        """Reconstruct ``(x, y, z)`` — only used by tests and the dealer itself."""
        x = self.ring.add(self.server1.x, self.server2.x)
        y = self.ring.add(self.server1.y, self.server2.y)
        z = self.ring.add(self.server1.z, self.server2.z)
        return x, y, z


class BeaverTripleDealer:
    """Trusted-dealer simulation of the offline triple-generation phase.

    Parameters
    ----------
    ring:
        Ring the triples live in.
    seed:
        Seed for the dealer's own randomness.  The dealer's randomness is
        independent of every user's and server's randomness, mirroring the
        non-collusion assumption.
    """

    def __init__(self, ring: Ring = DEFAULT_RING, seed: RandomState = None) -> None:
        self._ring = ring
        self._fingerprint: str | None = None
        self._seed = seed
        self._rng = derive_rng(seed)
        self._issued = 0
        self._largest_triple_elements = 0
        self._total_triple_elements = 0
        # Buffered dealing mode: a flat pool of element-wise triples served as
        # consecutive slices, and stacked pools of same-shape matrix triples.
        self._vector_pool: dict | None = None
        self._vector_pool_size = 0
        self._vector_pool_cursor = 0
        self._matrix_pools: dict = {}
        #: Optional hook computing the ``Z = X @ Y`` product of a fresh
        #: matrix triple.  The parallel engine installs a row-striped pool
        #: matmul here; the hook must be bit-identical to ``ring.matmul``
        #: (row strips are), so installing it never changes a dealt value.
        self.matmul = None

    @property
    def ring(self) -> Ring:
        """Ring in which the dealer issues correlated randomness."""
        return self._ring

    @property
    def triples_issued(self) -> int:
        """Number of scalar triples (or triple batches) issued so far."""
        return self._issued

    @property
    def largest_triple_elements(self) -> int:
        """Per-party ring elements of the largest single triple issued so far.

        One triple holds ``size(x) + size(y) + size(z)`` elements per party;
        this is the dealer's peak *single-allocation* cost and the quantity
        the blocked backend bounds at ``O(block_size^2)`` while the monolithic
        matrix backend pays ``O(n^2)``.
        """
        return self._largest_triple_elements

    @property
    def total_triple_elements(self) -> int:
        """Per-party ring elements summed over every triple issued so far."""
        return self._total_triple_elements

    def _record_issue(self, x: IntOrArray, y: IntOrArray, z: IntOrArray) -> None:
        elements = sum(int(np.size(part)) for part in (x, y, z))
        self._issued += 1
        self._total_triple_elements += elements
        if elements > self._largest_triple_elements:
            self._largest_triple_elements = elements

    def fingerprint(self) -> str:
        """Stable token of the randomness this dealer *started* from.

        Captured lazily but pinned on first use, so the token identifies the
        dealer's whole output stream regardless of how much has been drawn
        since.  This is the ``dealer_key`` of a
        :class:`~repro.parallel.store.TripleSignature`: equal fingerprints
        (plus equal geometry) guarantee byte-identical material.
        """
        if self._fingerprint is None:
            from repro.parallel.store import dealer_fingerprint

            self._fingerprint = dealer_fingerprint(
                self._seed if self._seed is not None else None
            )
        return self._fingerprint

    def absorb_accounting(self, issued: int, total_elements: int, largest_elements: int) -> None:
        """Fold a sub-dealer's (or a warm store batch's) tallies into this dealer.

        The parallel engine deals tile material through per-tile sub-dealers
        (and skips dealing entirely on a warm store hit); either way the
        run-level accounting must read exactly as if this dealer had issued
        every triple itself.
        """
        if issued < 0 or total_elements < 0 or largest_elements < 0:
            raise DealerError("absorbed accounting tallies must be non-negative")
        self._issued += int(issued)
        self._total_triple_elements += int(total_elements)
        if largest_elements > self._largest_triple_elements:
            self._largest_triple_elements = int(largest_elements)

    def accounting(self) -> Tuple[int, int, int]:
        """The ``(issued, total_elements, largest_elements)`` tallies so far."""
        return (self._issued, self._total_triple_elements, self._largest_triple_elements)

    def state_snapshot(self) -> dict:
        """Everything a retried dealing attempt must be able to roll back.

        Covers the randomness position, the issue tallies, and the buffered
        pools' cursors — so an attempt that fails mid-deal can be undone and
        the retry deals byte-identical material from the same stream
        position (see :meth:`state_restore`).
        """
        return {
            "rng": self._rng.bit_generator.state,
            "issued": self._issued,
            "largest": self._largest_triple_elements,
            "total": self._total_triple_elements,
            "vector_cursor": self._vector_pool_cursor,
            "matrix_cursors": {
                key: pool["cursor"] for key, pool in self._matrix_pools.items()
            },
        }

    def state_restore(self, snapshot: dict) -> None:
        """Roll the dealer back to a :meth:`state_snapshot` position."""
        self._rng.bit_generator.state = snapshot["rng"]
        self._issued = snapshot["issued"]
        self._largest_triple_elements = snapshot["largest"]
        self._total_triple_elements = snapshot["total"]
        self._vector_pool_cursor = snapshot["vector_cursor"]
        for key, cursor in snapshot["matrix_cursors"].items():
            if key in self._matrix_pools:
                self._matrix_pools[key]["cursor"] = cursor

    def spawn_subdealers(self, count: int) -> list:
        """*count* dealers with independent substreams of this dealer's seed.

        The tile-parallel engine gives every schedule unit its own
        sub-dealer so tiles can be dealt concurrently, with each tile's
        correlated randomness a deterministic function of (dealer seed, tile
        index) — never of worker interleaving.  The spawn consumes no draws
        from this dealer's own stream.
        """
        if count < 0:
            raise DealerError(f"count must be non-negative, got {count}")
        self.fingerprint()  # pin the key before the seed sequence spawns
        from repro.utils.rng import spawn_rngs

        return [
            BeaverTripleDealer(ring=self._ring, seed=rng)
            for rng in spawn_rngs(self._rng, count)
        ]

    def scalar_triple(self) -> BeaverTriplePair:
        """Sample one scalar triple and share it between the two servers."""
        ring = self._ring
        x = ring.random_element(self._rng)
        y = ring.random_element(self._rng)
        z = ring.mul(x, y)
        x_pair = share_scalar(x, ring=ring, rng=self._rng)
        y_pair = share_scalar(y, ring=ring, rng=self._rng)
        z_pair = share_scalar(z, ring=ring, rng=self._rng)
        self._record_issue(x, y, z)
        return BeaverTriplePair(
            server1=BeaverTriple(x=x_pair.share1, y=y_pair.share1, z=z_pair.share1),
            server2=BeaverTriple(x=x_pair.share2, y=y_pair.share2, z=z_pair.share2),
            ring=ring,
        )

    @property
    def provisioned_vector_remaining(self) -> int:
        """Element-wise triples still available in the provisioned pool."""
        return self._vector_pool_size - self._vector_pool_cursor

    def provision_vector(self, count: int) -> None:
        """Pre-provision *count* element-wise triples in one bulk draw.

        The buffered offline phase for two-way multiplications: subsequent
        :meth:`vector_triple` requests (of any shape whose element count fits
        the remaining pool) are served as consecutive slices, so the Beaver
        masks a triple carries depend only on its position in the provisioned
        stream, not on how requests are batched.  Issue accounting still
        happens at serve time, exactly as in the unbuffered mode.
        """
        fault_point("dealer.provision")
        if count <= 0:
            raise DealerError(f"provision count must be positive, got {count}")
        if self.provisioned_vector_remaining:
            raise DealerError(
                f"{self.provisioned_vector_remaining} provisioned triples are still unserved"
            )
        ring = self._ring
        shape = (int(count),)
        x = ring.random_array(shape, self._rng)
        y = ring.random_array(shape, self._rng)
        z = ring.mul(x, y)
        x_pair = share_vector(x, ring=ring, rng=self._rng)
        y_pair = share_vector(y, ring=ring, rng=self._rng)
        z_pair = share_vector(z, ring=ring, rng=self._rng)
        self._vector_pool = {
            "x1": x_pair.share1, "x2": x_pair.share2,
            "y1": y_pair.share1, "y2": y_pair.share2,
            "z1": z_pair.share1, "z2": z_pair.share2,
        }
        self._vector_pool_size = int(count)
        self._vector_pool_cursor = 0

    def provision_matrix(
        self, left_shape: Tuple[int, int], right_shape: Tuple[int, int], count: int
    ) -> None:
        """Pre-provision *count* same-shape matrix triples in one stacked draw.

        The stacked draw computes all ``Z_i = X_i @ Y_i`` products with one
        batched ring matmul; :meth:`matrix_triple` calls with exactly these
        shapes are then served from the pool (one stacked slice per call,
        identical accounting).
        """
        fault_point("dealer.provision")
        if count <= 0:
            raise DealerError(f"provision count must be positive, got {count}")
        if left_shape[1] != right_shape[0]:
            raise DealerError(
                f"inner dimensions must agree, got {left_shape} @ {right_shape}"
            )
        key = (tuple(left_shape), tuple(right_shape))
        pool = self._matrix_pools.get(key)
        if pool is not None and pool["cursor"] < pool["size"]:
            raise DealerError(
                f"{pool['size'] - pool['cursor']} provisioned matrix triples "
                f"of shape {key} are still unserved"
            )
        ring = self._ring
        x = ring.random_array((count,) + tuple(left_shape), self._rng)
        y = ring.random_array((count,) + tuple(right_shape), self._rng)
        z = ring.matmul(x, y)
        x_pair = share_vector(x, ring=ring, rng=self._rng)
        y_pair = share_vector(y, ring=ring, rng=self._rng)
        z_pair = share_vector(z, ring=ring, rng=self._rng)
        self._matrix_pools[key] = {
            "size": int(count),
            "cursor": 0,
            "x1": x_pair.share1, "x2": x_pair.share2,
            "y1": y_pair.share1, "y2": y_pair.share2,
            "z1": z_pair.share1, "z2": z_pair.share2,
        }

    def vector_triple(self, shape: Tuple[int, ...]) -> BeaverTriplePair:
        """An element-wise triple batch of the given *shape*.

        Served from the provisioned pool (as a reshaped consecutive slice)
        when one is available and large enough; drawn fresh otherwise.
        """
        if any(dim <= 0 for dim in shape):
            raise DealerError(f"triple batch shape must be positive, got {shape}")
        size = 1
        for dim in shape:
            size *= int(dim)
        if self._vector_pool is not None and self.provisioned_vector_remaining >= size:
            pool = self._vector_pool
            start = self._vector_pool_cursor
            end = start + size
            parts = {name: pool[name][start:end].reshape(shape) for name in pool}
            self._vector_pool_cursor = end
            if self._vector_pool_cursor >= self._vector_pool_size:
                self._vector_pool = None
                self._vector_pool_size = 0
                self._vector_pool_cursor = 0
            self._record_issue(parts["x1"], parts["y1"], parts["z1"])
            return BeaverTriplePair(
                server1=BeaverTriple(x=parts["x1"], y=parts["y1"], z=parts["z1"]),
                server2=BeaverTriple(x=parts["x2"], y=parts["y2"], z=parts["z2"]),
                ring=self._ring,
            )
        if self.provisioned_vector_remaining:
            # Bypassing a partially-consumed pool would later serve the
            # stranded triples out of stream order; fail loudly instead.
            raise DealerError(
                f"request for {size} triples exceeds the "
                f"{self.provisioned_vector_remaining} still provisioned; "
                "provision more or drain the pool first"
            )
        # On-demand minting is a provisioning event too — same fault site as
        # the buffered path, so exhaustion chaos hits every dealing mode.
        fault_point("dealer.provision")
        ring = self._ring
        x = ring.random_array(shape, self._rng)
        y = ring.random_array(shape, self._rng)
        z = ring.mul(x, y)
        x_pair = share_vector(x, ring=ring, rng=self._rng)
        y_pair = share_vector(y, ring=ring, rng=self._rng)
        z_pair = share_vector(z, ring=ring, rng=self._rng)
        self._record_issue(x, y, z)
        return BeaverTriplePair(
            server1=BeaverTriple(x=x_pair.share1, y=y_pair.share1, z=z_pair.share1),
            server2=BeaverTriple(x=x_pair.share2, y=y_pair.share2, z=z_pair.share2),
            ring=ring,
        )

    def matrix_triple(self, left_shape: Tuple[int, int], right_shape: Tuple[int, int]) -> BeaverTriplePair:
        """Sample a *matrix* triple ``Z = X @ Y`` for secure matrix products.

        Matrix triples let the servers multiply two secret-shared matrices
        with a single pair of openings, which is what makes the vectorised
        secure triangle count (``trace(A^3)``) practical.
        """
        if left_shape[1] != right_shape[0]:
            raise DealerError(
                f"inner dimensions must agree, got {left_shape} @ {right_shape}"
            )
        key = (tuple(left_shape), tuple(right_shape))
        pool = self._matrix_pools.get(key)
        if pool is not None and pool["cursor"] < pool["size"]:
            index = pool["cursor"]
            pool["cursor"] = index + 1
            if pool["cursor"] >= pool["size"]:
                self._matrix_pools.pop(key)
            parts = {name: pool[name][index] for name in ("x1", "x2", "y1", "y2", "z1", "z2")}
            self._record_issue(parts["x1"], parts["y1"], parts["z1"])
            return BeaverTriplePair(
                server1=BeaverTriple(x=parts["x1"], y=parts["y1"], z=parts["z1"]),
                server2=BeaverTriple(x=parts["x2"], y=parts["y2"], z=parts["z2"]),
                ring=self._ring,
            )
        fault_point("dealer.provision")
        ring = self._ring
        x = ring.random_array(left_shape, self._rng)
        y = ring.random_array(right_shape, self._rng)
        # The derived product may be computed by the (bit-identical) parallel
        # matmul hook; the masks themselves always come from this dealer's
        # stream, so the dealt bytes are hook-independent.
        z = (self.matmul or ring.matmul)(x, y)
        x_pair = share_vector(x, ring=ring, rng=self._rng)
        y_pair = share_vector(y, ring=ring, rng=self._rng)
        z_pair = share_vector(z, ring=ring, rng=self._rng)
        self._record_issue(x, y, z)
        return BeaverTriplePair(
            server1=BeaverTriple(x=x_pair.share1, y=y_pair.share1, z=z_pair.share1),
            server2=BeaverTriple(x=x_pair.share2, y=y_pair.share2, z=z_pair.share2),
            ring=ring,
        )

    def scalar_triples(self, count: int) -> Iterator[BeaverTriplePair]:
        """Yield *count* scalar triples (used to pre-provision a protocol run)."""
        if count < 0:
            raise DealerError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.scalar_triple()
