"""Simulated 1-out-of-2 oblivious transfer.

The paper's offline phase assumes multiplication groups are precomputed "via
oblivious transfer" (Section III-D, citing Rabin / Kilian).  A real OT needs
public-key operations and a network; here the primitive is *simulated* — the
sender and receiver objects exchange messages through an in-process mailbox,
and the security property we care about for the reproduction (the receiver
learns exactly one of the two sender messages, the sender learns nothing
about the choice bit) is enforced structurally: the receiver object is only
ever handed the chosen message, and the sender never observes the choice.

This is *not* a cryptographically secure OT; it exists so that

* the dealer abstraction used by :class:`~repro.crypto.beaver.BeaverTripleDealer`
  can be exercised end-to-end through an OT-style interface (the
  Gilboa-style share-of-product construction in
  :func:`gilboa_product_shares`), and
* tests can verify the correctness of the OT-based product sharing that a
  deployment would use in place of the trusted dealer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.exceptions import ProtocolError
from repro.utils.rng import RandomState, derive_rng


@dataclass
class ObliviousTransferChannel:
    """In-process 1-out-of-2 OT between a sender and a receiver.

    The channel records how many transfers were executed so experiments can
    report offline-phase costs.
    """

    ring: Ring = DEFAULT_RING
    transfers: int = 0
    _audit_log: List[Tuple[int, int]] = field(default_factory=list, repr=False)

    def transfer(self, message0: int, message1: int, choice_bit: int) -> int:
        """Deliver ``message_choice`` to the receiver.

        The return value is what the *receiver* learns.  The sender's inputs
        and the receiver's choice are recorded only in an audit log used by
        security tests (never read by protocol code).
        """
        if choice_bit not in (0, 1):
            raise ProtocolError(f"choice bit must be 0 or 1, got {choice_bit}")
        self.transfers += 1
        self._audit_log.append((self.transfers, choice_bit))
        return int(message1) if choice_bit else int(message0)


def gilboa_product_shares(
    value_a: int,
    value_b: int,
    channel: ObliviousTransferChannel,
    rng: RandomState = None,
    ring: Ring = DEFAULT_RING,
) -> Tuple[int, int]:
    """Compute additive shares of ``value_a * value_b`` using bitwise OT.

    This is the classical Gilboa construction: for each bit ``b_j`` of
    ``value_b`` the sender (holding ``value_a``) offers the pair
    ``(r_j, r_j + value_a * 2^j)``; the receiver selects with ``b_j`` and the
    sum telescopes so that ``sender_share + receiver_share = a * b`` in the
    ring.  It demonstrates that the trusted dealer used elsewhere can be
    replaced by ``l`` OTs per product without changing any online message.

    Returns
    -------
    (sender_share, receiver_share):
        Additive shares of the product, one per party.
    """
    generator = derive_rng(rng)
    sender_share = 0
    receiver_share = 0
    b_encoded = ring.encode(value_b)
    for bit_index in range(ring.bits):
        mask = ring.random_element(generator)
        offered0 = mask
        offered1 = ring.add(mask, ring.mul(ring.encode(value_a), 1 << bit_index))
        choice = (b_encoded >> bit_index) & 1
        received = channel.transfer(offered0, offered1, choice)
        sender_share = ring.sub(sender_share, mask)
        receiver_share = ring.add(receiver_share, received)
    return sender_share, receiver_share
