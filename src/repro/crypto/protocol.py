"""Party / channel simulation with communication accounting.

CARGO is a protocol between ``n`` users and two non-colluding servers.  The
paper deploys it over a network; this module simulates the deployment
in-process while preserving the structure the security argument relies on:

* each :class:`Party` has a mailbox and can only read messages addressed to
  it,
* every message goes through a :class:`Channel`, which records the number of
  messages and an estimate of their size in bytes in a shared
  :class:`CommunicationLedger`, and
* :class:`TwoServerRuntime` wires up the standard topology (every user has a
  private channel to each server, and the two servers have a channel to each
  other) and exposes the ledger so experiments can report communication
  costs alongside running time.

The substitution (real network → in-process simulation) is documented in
``DESIGN.md``; the bytes-on-the-wire accounting is what lets the repo still
speak to the paper's overhead discussion.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import ProtocolError


def estimate_message_bytes(payload: Any) -> int:
    """Rough wire-size estimate of *payload* in bytes.

    Ring elements count as 8 bytes; numpy arrays as their buffer size;
    containers as the sum of their elements.  The estimate only needs to be
    consistent across protocols to make the communication comparisons in the
    experiments meaningful.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool,)):
        return 1
    if isinstance(payload, (int, np.integer)):
        return 8
    if isinstance(payload, (float, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, dict):
        return sum(estimate_message_bytes(k) + estimate_message_bytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(estimate_message_bytes(item) for item in payload)
    if hasattr(payload, "__dict__"):
        return estimate_message_bytes(vars(payload))
    return 8


@dataclass
class CommunicationLedger:
    """Aggregate message and byte counts, broken down by channel label.

    Every message is additionally attributed to a *phase* — the semantic
    protocol step it belongs to (``adjacency_share``, ``noise_share``,
    ``noisy_degree``, …).  Channels pass their message tag as the phase at
    send time, so experiments can split, say, the adjacency-share upload from
    the noise-share upload exactly rather than reverse-engineering the split
    from message sizes.

    Appends are serialised with a lock so concurrent senders (worker threads
    of the tile-parallel engine, parallel sweep trials sharing a runtime)
    cannot lose counter increments; totals are therefore exact for any
    worker count.
    """

    messages: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_sent: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    phase_messages: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    phase_bytes: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        label: str,
        payload: Any,
        phase: Optional[str] = None,
        messages: int = 1,
        total_bytes: Optional[int] = None,
    ) -> None:
        """Account *messages* messages with the given total *payload* on *label*.

        *phase* attributes the messages to a named protocol step; ``None``
        books them under ``"unlabelled"`` so phase totals always reconcile
        with the channel totals.  *messages* supports batched sends: one
        array payload stands for that many per-user messages, with the byte
        total computed once over the stacked payload (identical to the sum of
        the per-message sizes, since ring elements and floats are fixed
        width).  *total_bytes*, when given, overrides the payload size
        estimate — used when the caller already knows the aggregate size
        (e.g. a broadcast of ``messages`` identical copies).
        """
        if messages < 0:
            raise ProtocolError(f"messages must be non-negative, got {messages}")
        size = total_bytes if total_bytes is not None else estimate_message_bytes(payload)
        phase_key = phase if phase is not None else "unlabelled"
        with self._lock:
            self.messages[label] += messages
            self.bytes_sent[label] += size
            self.phase_messages[phase_key] += messages
            self.phase_bytes[phase_key] += size

    @property
    def total_messages(self) -> int:
        """Total number of messages across all channels."""
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        """Total estimated bytes across all channels."""
        return sum(self.bytes_sent.values())

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-channel breakdown suitable for reporting."""
        return {
            label: {"messages": self.messages[label], "bytes": self.bytes_sent[label]}
            for label in sorted(self.messages)
        }

    def phase_summary(self) -> Dict[str, Dict[str, int]]:
        """Per-phase breakdown (message tags recorded at send time)."""
        return {
            phase: {"messages": self.phase_messages[phase], "bytes": self.phase_bytes[phase]}
            for phase in sorted(self.phase_messages)
        }


@dataclass
class Message:
    """A single protocol message: sender, receiver, free-form tag, payload."""

    sender: str
    receiver: str
    tag: str
    payload: Any


class Party:
    """A protocol participant with a name and an inbound mailbox."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._mailbox: Deque[Message] = deque()

    def deliver(self, message: Message) -> None:
        """Called by a :class:`Channel` to place *message* in the mailbox."""
        if message.receiver != self.name:
            raise ProtocolError(
                f"party {self.name!r} received a message addressed to {message.receiver!r}"
            )
        self._mailbox.append(message)

    def receive(self, tag: Optional[str] = None) -> Message:
        """Pop the oldest message (optionally the oldest with a given *tag*)."""
        if tag is None:
            if not self._mailbox:
                raise ProtocolError(f"party {self.name!r} has no pending messages")
            return self._mailbox.popleft()
        for index, message in enumerate(self._mailbox):
            if message.tag == tag:
                del self._mailbox[index]
                return message
        raise ProtocolError(f"party {self.name!r} has no pending message tagged {tag!r}")

    def pending(self) -> int:
        """Number of undelivered messages in the mailbox."""
        return len(self._mailbox)


class Channel:
    """A directed pair of parties plus the shared communication ledger."""

    def __init__(self, sender: Party, receiver: Party, ledger: CommunicationLedger) -> None:
        self._sender = sender
        self._receiver = receiver
        self._ledger = ledger
        self.label = f"{sender.name}->{receiver.name}"

    def send(self, tag: str, payload: Any) -> None:
        """Send *payload* from the channel's sender to its receiver.

        The message *tag* doubles as the ledger's phase label, so per-phase
        communication totals come for free with every send.
        """
        self._ledger.record(self.label, payload, phase=tag)
        self._receiver.deliver(
            Message(sender=self._sender.name, receiver=self._receiver.name, tag=tag, payload=payload)
        )


class TwoServerRuntime:
    """The CARGO communication topology: ``n`` users and two servers.

    The runtime creates the parties, the pairwise channels the protocol
    needs, and a single :class:`CommunicationLedger`.  Protocol code obtains
    channels by name (e.g. ``runtime.user_to_server(i, 1)``) so that every
    transmission is accounted for.
    """

    SERVER1 = "S1"
    SERVER2 = "S2"

    def __init__(self, num_users: int) -> None:
        if num_users < 0:
            raise ProtocolError(f"num_users must be non-negative, got {num_users}")
        self.ledger = CommunicationLedger()
        self.users: List[Party] = [Party(f"user-{i}") for i in range(num_users)]
        self.server1 = Party(self.SERVER1)
        self.server2 = Party(self.SERVER2)
        self._channels: Dict[Tuple[str, str], Channel] = {}
        for user in self.users:
            self._register(user, self.server1)
            self._register(user, self.server2)
            self._register(self.server1, user)
            self._register(self.server2, user)
        self._register(self.server1, self.server2)
        self._register(self.server2, self.server1)

    # ------------------------------------------------------------------ #
    # Channel lookup
    # ------------------------------------------------------------------ #
    def user_to_server(self, user_index: int, server_index: int) -> Channel:
        """Channel from ``user-{user_index}`` to server ``S{server_index}``."""
        return self._channel(self._user(user_index).name, self._server(server_index).name)

    def server_to_user(self, server_index: int, user_index: int) -> Channel:
        """Channel from server ``S{server_index}`` to ``user-{user_index}``."""
        return self._channel(self._server(server_index).name, self._user(user_index).name)

    def server_to_server(self, from_index: int, to_index: int) -> Channel:
        """Channel between the two servers."""
        return self._channel(self._server(from_index).name, self._server(to_index).name)

    def server(self, server_index: int) -> Party:
        """The server party ``S1`` or ``S2``."""
        return self._server(server_index)

    def user(self, user_index: int) -> Party:
        """The user party with index *user_index*."""
        return self._user(user_index)

    def users_to_server(self, server_index: int, tag: str, payloads: Any) -> None:
        """Batched upload: every user sends ``payloads[i]`` to one server.

        The wire-equivalent of ``n`` individual :meth:`user_to_server` sends,
        executed as one array-native step: the ledger books ``n`` messages
        under the aggregate ``users->S{server_index}`` label with the byte
        total of the stacked payload (identical to the sum of the per-user
        sizes), and the server's mailbox receives one stacked message.
        """
        server = self._server(server_index)
        payloads = np.asarray(payloads)
        if payloads.ndim == 0:
            raise ProtocolError(
                "batched upload needs one payload row per user, got a scalar"
            )
        if payloads.shape[0] != len(self.users):
            raise ProtocolError(
                f"batched upload carries {payloads.shape[0]} rows "
                f"for {len(self.users)} users"
            )
        self.ledger.record(
            f"users->{server.name}", payloads, phase=tag, messages=payloads.shape[0]
        )
        server.deliver(
            Message(sender="users", receiver=server.name, tag=tag, payload=payloads)
        )

    def broadcast_to_users(self, server_index: int, tag: str, payload: Any) -> None:
        """Send the same *payload* from a server to every user.

        Accounted as one aggregate ledger record of ``n`` messages (the byte
        total is ``n`` copies of the payload); each user's mailbox still
        receives its own copy.
        """
        num_users = len(self.users)
        if num_users == 0:
            return
        server = self._server(server_index)
        self.ledger.record(
            f"{server.name}->users",
            payload,
            phase=tag,
            messages=num_users,
            total_bytes=num_users * estimate_message_bytes(payload),
        )
        for user in self.users:
            user.deliver(
                Message(sender=server.name, receiver=user.name, tag=tag, payload=payload)
            )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _register(self, sender: Party, receiver: Party) -> None:
        self._channels[(sender.name, receiver.name)] = Channel(sender, receiver, self.ledger)

    def _channel(self, sender_name: str, receiver_name: str) -> Channel:
        key = (sender_name, receiver_name)
        if key not in self._channels:
            raise ProtocolError(f"no channel registered from {sender_name!r} to {receiver_name!r}")
        return self._channels[key]

    def _server(self, server_index: int) -> Party:
        if server_index == 1:
            return self.server1
        if server_index == 2:
            return self.server2
        raise ProtocolError(f"server index must be 1 or 2, got {server_index}")

    def _user(self, user_index: int) -> Party:
        if not (0 <= user_index < len(self.users)):
            raise ProtocolError(
                f"user index {user_index} out of range for {len(self.users)} users"
            )
        return self.users[user_index]
