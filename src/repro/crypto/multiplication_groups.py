"""Multiplication groups: correlated randomness for three-way products.

Section III-D of the paper generalises Beaver triples to *multiplication
groups* (MGs): tuples ``(x, y, z, w, o, p, q)`` with

``w = x*y*z``, ``o = x*y``, ``p = x*z``, ``q = y*z``,

each additively shared between the two servers.  Given shares of three
secrets ``a``, ``b``, ``c``, the servers open ``e = a - x``, ``f = b - y``
and ``g = c - z`` and then compute shares of ``a*b*c`` locally as

``<d>_i = <w>_i + <o>_i g + <p>_i f + <q>_i e + <x>_i f g + <y>_i e g
         + <z>_i e f + (i - 1) e f g``

which is Theorem 1 in the paper.  One multiplication group is consumed per
candidate triple ``(i, j, k)`` in the faithful ``Count`` protocol.

As with Beaver triples, the offline generation is modelled by a trusted
dealer; see ``DESIGN.md`` for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.sharing import share_scalar, share_vector
from repro.exceptions import DealerError
from repro.resilience.faults import fault_point
from repro.utils.rng import RandomState, derive_rng

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class MultiplicationGroup:
    """One server's shares of a multiplication group.

    Field names follow the paper: ``x, y, z`` are the masks, ``w = xyz``,
    ``o = xy``, ``p = xz``, ``q = yz``.
    """

    x: IntOrArray
    y: IntOrArray
    z: IntOrArray
    w: IntOrArray
    o: IntOrArray
    p: IntOrArray
    q: IntOrArray


@dataclass(frozen=True)
class MultiplicationGroupPair:
    """Both servers' shares of one multiplication group."""

    server1: MultiplicationGroup
    server2: MultiplicationGroup
    ring: Ring = DEFAULT_RING

    def plaintext(self) -> Tuple[IntOrArray, ...]:
        """Reconstruct ``(x, y, z, w, o, p, q)`` — tests and dealer only."""
        ring = self.ring
        return tuple(
            ring.add(getattr(self.server1, name), getattr(self.server2, name))
            for name in ("x", "y", "z", "w", "o", "p", "q")
        )


#: Field names of a multiplication group in dealing order.  Public because
#: size estimates elsewhere (e.g. the faithful engine's triple-store gate)
#: are proportional to the field count.
MG_FIELDS = ("x", "y", "z", "w", "o", "p", "q")
_MG_FIELDS = MG_FIELDS


class MultiplicationGroupDealer:
    """Trusted-dealer simulation of the offline MG-generation phase.

    The dealer draws the three masks uniformly from the ring, derives the
    four correlated products, shares all seven values and hands each server
    its half.  Supports scalar groups (one per candidate triangle in the
    faithful protocol) and element-wise vector batches (one opening round for
    a whole block of candidate triples).

    A *buffered* dealing mode is available through :meth:`provision`: the
    offline phase for a run is drawn in bulk calls, and subsequent
    :meth:`vector_group` requests consume consecutive elements of the
    provisioned stream.  Repeated :meth:`provision` calls append to the
    stream, and a request may span a provisioning boundary, so a group's
    masks depend only on its position in the stream and on the sequence of
    provisioned chunk sizes — never on how requests are batched.  As long as
    two runs provision the same chunk sizes in the same order (the faithful
    backend's schedule guarantees this for any batch size), the openings
    they produce are exact concatenations of each other, which is what the
    transcript-equivalence tests verify.  Accounting (:attr:`groups_issued`)
    is recorded at serve time exactly as in the unbuffered mode.
    """

    def __init__(self, ring: Ring = DEFAULT_RING, seed: RandomState = None) -> None:
        self._ring = ring
        self._fingerprint: str | None = None
        self._seed = seed
        self._rng = derive_rng(seed)
        self._issued = 0
        # FIFO of provisioned blocks: (server1 fields, server2 fields, size),
        # with a cursor into the head block.
        self._pool_blocks: list = []
        self._pool_cursor = 0
        self._pool_remaining = 0
        self._scratch: dict = {}

    @property
    def ring(self) -> Ring:
        """Ring in which multiplication groups are issued."""
        return self._ring

    @property
    def groups_issued(self) -> int:
        """Number of scalar groups or group batches issued so far."""
        return self._issued

    @property
    def provisioned_remaining(self) -> int:
        """Element-wise groups still available in the provisioned pool."""
        return self._pool_remaining

    def fingerprint(self) -> str:
        """Stable token of the randomness this dealer *started* from.

        Pinned on first use (read it before any dealing); equal fingerprints
        plus equal provisioning schedules guarantee byte-identical group
        streams, which is what lets a
        :class:`~repro.parallel.store.TripleStore` memoise them.
        """
        if self._fingerprint is None:
            from repro.parallel.store import dealer_fingerprint

            self._fingerprint = dealer_fingerprint(
                self._seed if self._seed is not None else None
            )
        return self._fingerprint

    def export_pool(self) -> list:
        """Snapshot the provisioned (not yet served) stream for a triple store.

        Must be taken right after provisioning and before any serving (the
        cursor must be at the stream head), so the snapshot is exactly the
        material a warm run needs.  The block arrays are shared by
        reference — serving only slices them, never mutates.
        """
        if self._pool_cursor != 0:
            raise DealerError("export_pool requires an unserved pool (cursor at 0)")
        return [(dict(s1), dict(s2), size) for s1, s2, size in self._pool_blocks]

    def import_pool(self, blocks: list) -> None:
        """Load a previously exported provisioned stream (warm offline phase).

        Replaces the provisioning draws entirely: subsequent
        :meth:`vector_group` calls serve the imported stream with unchanged
        accounting.  Importing over a non-empty pool is an error — it would
        interleave two streams.
        """
        if self._pool_remaining:
            raise DealerError(
                f"{self._pool_remaining} provisioned groups are still unserved; "
                "refusing to interleave an imported stream"
            )
        total = 0
        for block in blocks:
            try:
                s1, s2, size = block
            except (TypeError, ValueError):
                raise DealerError("imported pool block must be (server1, server2, size)") from None
            if set(s1) != set(_MG_FIELDS) or set(s2) != set(_MG_FIELDS):
                raise DealerError("imported pool block is missing multiplication-group fields")
            self._pool_blocks.append((dict(s1), dict(s2), int(size)))
            total += int(size)
        self._pool_remaining += total

    def provision(self, count: int) -> None:
        """Pre-provision *count* element-wise groups in one bulk draw.

        This is the buffered offline phase: one call replaces ``count``
        independent dealer interactions.  Repeated calls append to the
        provisioned stream (requests may span the boundary).  Scratch
        buffers for the derived products are kept between same-sized calls
        so repeated provisioning of a fixed chunk reuses its allocations.
        """
        fault_point("dealer.provision")
        if count <= 0:
            raise DealerError(f"provision count must be positive, got {count}")
        ring = self._ring
        shape = (int(count),)
        # One bulk draw covers every uniform the provisioning needs: the
        # three masks x, y, z plus one sharing mask per field — ten arrays,
        # one RNG dispatch.
        randomness = ring.random_array((10, int(count)), self._rng)
        x, y, z = randomness[0], randomness[1], randomness[2]
        sharing_masks = randomness[3:]
        if self._scratch.get("size") != count:
            self._scratch = {
                "size": count,
                "o": np.empty(shape, dtype=ring.dtype),
                "p": np.empty(shape, dtype=ring.dtype),
                "q": np.empty(shape, dtype=ring.dtype),
                "w": np.empty(shape, dtype=ring.dtype),
            }
        scratch = self._scratch
        # uint64 products wrap modulo 2^64 natively; narrower rings mask below.
        o = np.multiply(x, y, out=scratch["o"])
        p = np.multiply(x, z, out=scratch["p"])
        q = np.multiply(y, z, out=scratch["q"])
        w = np.multiply(o, z, out=scratch["w"])
        if ring.bits < 64:
            mask = ring.dtype.type(ring.mask)
            for arr in (o, p, q, w):
                np.bitwise_and(arr, mask, out=arr)
        server1: dict = {}
        server2: dict = {}
        for index, (name, value) in enumerate(
            (("x", x), ("y", y), ("z", z), ("w", w), ("o", o), ("p", p), ("q", q))
        ):
            mask_share = sharing_masks[index]
            other = np.subtract(value, mask_share)
            if ring.bits < 64:
                np.bitwise_and(other, ring.dtype.type(ring.mask), out=other)
            server1[name] = mask_share
            server2[name] = other
        self._pool_blocks.append((server1, server2, int(count)))
        self._pool_remaining += int(count)

    def scalar_group(self) -> MultiplicationGroupPair:
        """Sample one scalar multiplication group."""
        ring = self._ring
        x = ring.random_element(self._rng)
        y = ring.random_element(self._rng)
        z = ring.random_element(self._rng)
        return self._build_pair(x, y, z, scalar=True)

    def vector_group(self, shape: Tuple[int, ...]) -> MultiplicationGroupPair:
        """An element-wise batch of multiplication groups.

        Served as the next consecutive slice of the provisioned pool when one
        is available and large enough (buffered mode); drawn fresh otherwise.
        """
        if any(dim <= 0 for dim in shape):
            raise DealerError(f"group batch shape must be positive, got {shape}")
        size = 1
        for dim in shape:
            size *= int(dim)
        if self._pool_remaining >= size:
            return self._serve_from_pool(shape, size)
        if self._pool_remaining:
            # Silently skipping a partially-consumed pool would serve the
            # stranded groups out of stream order later, breaking the
            # buffered-mode guarantee that masks depend only on position.
            raise DealerError(
                f"request for {size} groups exceeds the {self._pool_remaining} "
                "still provisioned; provision more or drain the pool first"
            )
        ring = self._ring
        x = ring.random_array(shape, self._rng)
        y = ring.random_array(shape, self._rng)
        z = ring.random_array(shape, self._rng)
        return self._build_pair(x, y, z, scalar=False)

    def scalar_groups(self, count: int) -> Iterator[MultiplicationGroupPair]:
        """Yield *count* scalar multiplication groups."""
        if count < 0:
            raise DealerError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.scalar_group()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _serve_from_pool(self, shape: Tuple[int, ...], size: int) -> MultiplicationGroupPair:
        """Consume *size* consecutive stream elements (may span blocks)."""
        head1, head2, head_size = self._pool_blocks[0]
        if head_size - self._pool_cursor >= size:
            # Fast path: the request fits the head block — serve zero-copy
            # slices.
            start = self._pool_cursor
            end = start + size
            fields1 = {name: head1[name][start:end].reshape(shape) for name in _MG_FIELDS}
            fields2 = {name: head2[name][start:end].reshape(shape) for name in _MG_FIELDS}
            self._pool_cursor = end
            if end >= head_size:
                self._pool_blocks.pop(0)
                self._pool_cursor = 0
        else:
            # The request spans a provisioning boundary: concatenate the
            # needed parts from successive blocks.  The stream positions —
            # and therefore the masks — are unchanged.
            parts1 = {name: [] for name in _MG_FIELDS}
            parts2 = {name: [] for name in _MG_FIELDS}
            needed = size
            while needed:
                block1, block2, block_size = self._pool_blocks[0]
                take = min(needed, block_size - self._pool_cursor)
                start = self._pool_cursor
                end = start + take
                for name in _MG_FIELDS:
                    parts1[name].append(block1[name][start:end])
                    parts2[name].append(block2[name][start:end])
                needed -= take
                self._pool_cursor = end
                if end >= block_size:
                    self._pool_blocks.pop(0)
                    self._pool_cursor = 0
            fields1 = {name: np.concatenate(parts1[name]).reshape(shape) for name in _MG_FIELDS}
            fields2 = {name: np.concatenate(parts2[name]).reshape(shape) for name in _MG_FIELDS}
        self._pool_remaining -= size
        self._issued += 1
        return MultiplicationGroupPair(
            server1=MultiplicationGroup(**fields1),
            server2=MultiplicationGroup(**fields2),
            ring=self._ring,
        )

    def _build_pair(self, x, y, z, scalar: bool) -> MultiplicationGroupPair:
        ring = self._ring
        o = ring.mul(x, y)
        p = ring.mul(x, z)
        q = ring.mul(y, z)
        w = ring.mul(o, z)
        share = share_scalar if scalar else share_vector
        pairs = {
            name: share(value, ring=ring, rng=self._rng)
            for name, value in (("x", x), ("y", y), ("z", z), ("w", w), ("o", o), ("p", p), ("q", q))
        }
        self._issued += 1
        return MultiplicationGroupPair(
            server1=MultiplicationGroup(**{name: pair.share1 for name, pair in pairs.items()}),
            server2=MultiplicationGroup(**{name: pair.share2 for name, pair in pairs.items()}),
            ring=ring,
        )
