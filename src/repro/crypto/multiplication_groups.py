"""Multiplication groups: correlated randomness for three-way products.

Section III-D of the paper generalises Beaver triples to *multiplication
groups* (MGs): tuples ``(x, y, z, w, o, p, q)`` with

``w = x*y*z``, ``o = x*y``, ``p = x*z``, ``q = y*z``,

each additively shared between the two servers.  Given shares of three
secrets ``a``, ``b``, ``c``, the servers open ``e = a - x``, ``f = b - y``
and ``g = c - z`` and then compute shares of ``a*b*c`` locally as

``<d>_i = <w>_i + <o>_i g + <p>_i f + <q>_i e + <x>_i f g + <y>_i e g
         + <z>_i e f + (i - 1) e f g``

which is Theorem 1 in the paper.  One multiplication group is consumed per
candidate triple ``(i, j, k)`` in the faithful ``Count`` protocol.

As with Beaver triples, the offline generation is modelled by a trusted
dealer; see ``DESIGN.md`` for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple, Union

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.crypto.sharing import share_scalar, share_vector
from repro.exceptions import DealerError
from repro.utils.rng import RandomState, derive_rng

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class MultiplicationGroup:
    """One server's shares of a multiplication group.

    Field names follow the paper: ``x, y, z`` are the masks, ``w = xyz``,
    ``o = xy``, ``p = xz``, ``q = yz``.
    """

    x: IntOrArray
    y: IntOrArray
    z: IntOrArray
    w: IntOrArray
    o: IntOrArray
    p: IntOrArray
    q: IntOrArray


@dataclass(frozen=True)
class MultiplicationGroupPair:
    """Both servers' shares of one multiplication group."""

    server1: MultiplicationGroup
    server2: MultiplicationGroup
    ring: Ring = DEFAULT_RING

    def plaintext(self) -> Tuple[IntOrArray, ...]:
        """Reconstruct ``(x, y, z, w, o, p, q)`` — tests and dealer only."""
        ring = self.ring
        return tuple(
            ring.add(getattr(self.server1, name), getattr(self.server2, name))
            for name in ("x", "y", "z", "w", "o", "p", "q")
        )


class MultiplicationGroupDealer:
    """Trusted-dealer simulation of the offline MG-generation phase.

    The dealer draws the three masks uniformly from the ring, derives the
    four correlated products, shares all seven values and hands each server
    its half.  Supports scalar groups (one per candidate triangle in the
    faithful protocol) and element-wise vector batches (one opening round for
    a whole block of candidate triples).
    """

    def __init__(self, ring: Ring = DEFAULT_RING, seed: RandomState = None) -> None:
        self._ring = ring
        self._rng = derive_rng(seed)
        self._issued = 0

    @property
    def ring(self) -> Ring:
        """Ring in which multiplication groups are issued."""
        return self._ring

    @property
    def groups_issued(self) -> int:
        """Number of scalar groups or group batches issued so far."""
        return self._issued

    def scalar_group(self) -> MultiplicationGroupPair:
        """Sample one scalar multiplication group."""
        ring = self._ring
        x = ring.random_element(self._rng)
        y = ring.random_element(self._rng)
        z = ring.random_element(self._rng)
        return self._build_pair(x, y, z, scalar=True)

    def vector_group(self, shape: Tuple[int, ...]) -> MultiplicationGroupPair:
        """Sample an element-wise batch of multiplication groups."""
        if any(dim <= 0 for dim in shape):
            raise DealerError(f"group batch shape must be positive, got {shape}")
        ring = self._ring
        x = ring.random_array(shape, self._rng)
        y = ring.random_array(shape, self._rng)
        z = ring.random_array(shape, self._rng)
        return self._build_pair(x, y, z, scalar=False)

    def scalar_groups(self, count: int) -> Iterator[MultiplicationGroupPair]:
        """Yield *count* scalar multiplication groups."""
        if count < 0:
            raise DealerError(f"count must be non-negative, got {count}")
        for _ in range(count):
            yield self.scalar_group()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _build_pair(self, x, y, z, scalar: bool) -> MultiplicationGroupPair:
        ring = self._ring
        o = ring.mul(x, y)
        p = ring.mul(x, z)
        q = ring.mul(y, z)
        w = ring.mul(o, z)
        share = share_scalar if scalar else share_vector
        pairs = {
            name: share(value, ring=ring, rng=self._rng)
            for name, value in (("x", x), ("y", y), ("z", z), ("w", w), ("o", o), ("p", p), ("q", q))
        }
        self._issued += 1
        return MultiplicationGroupPair(
            server1=MultiplicationGroup(**{name: pair.share1 for name, pair in pairs.items()}),
            server2=MultiplicationGroup(**{name: pair.share2 for name, pair in pairs.items()}),
            ring=ring,
        )
