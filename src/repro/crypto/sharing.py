"""Two-party additive secret sharing over ``Z_{2^l}``.

A secret ``x`` is split as ``<x>_1 = r`` and ``<x>_2 = x - r (mod 2^l)`` for a
uniformly random mask ``r`` (Section II-C of the paper).  Each individual
share is uniformly distributed and therefore reveals nothing about ``x``;
reconstruction is the modular sum of the two shares.

The :class:`SharePair` convenience wrapper bundles both shares of one secret
and is what the *dealer*-style code (users splitting their own data) hands to
the two servers.  Server-side protocol code never holds a full
:class:`SharePair`; it only ever sees one side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.exceptions import ShareError
from repro.utils.rng import RandomState, derive_rng, spawn_rngs

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class SharePair:
    """Both additive shares of one secret (scalar or array).

    ``share1`` goes to server ``S1`` and ``share2`` to server ``S2``.  The
    holder of a single share learns nothing; holding both is equivalent to
    holding the secret, which is why only the data owner (the user) ever
    constructs a :class:`SharePair`.
    """

    share1: IntOrArray
    share2: IntOrArray
    ring: Ring = DEFAULT_RING

    def reconstruct(self) -> IntOrArray:
        """Recombine the two shares into the ring element they encode."""
        return self.ring.add(self.share1, self.share2)

    def reconstruct_signed(self) -> IntOrArray:
        """Recombine and decode to a signed integer (for noise / counts)."""
        return self.ring.decode_signed(self.reconstruct())

    def for_server(self, server_index: int) -> IntOrArray:
        """Return the share destined for server *server_index* (1 or 2)."""
        if server_index == 1:
            return self.share1
        if server_index == 2:
            return self.share2
        raise ShareError(f"server index must be 1 or 2, got {server_index}")


def share_scalar(
    value: int, ring: Ring = DEFAULT_RING, rng: RandomState = None
) -> SharePair:
    """Additively share a single (possibly negative) integer.

    Examples
    --------
    >>> pair = share_scalar(-42, rng=0)
    >>> pair.reconstruct_signed()
    -42
    >>> pair.share1 != -42  # each share alone is a uniform mask
    True
    """
    generator = derive_rng(rng)
    encoded = ring.encode(int(value))
    mask = ring.random_element(generator)
    return SharePair(share1=mask, share2=ring.sub(encoded, mask), ring=ring)


def share_vector(
    values: np.ndarray, ring: Ring = DEFAULT_RING, rng: RandomState = None
) -> SharePair:
    """Additively share a 1-D integer array element-wise.

    This is how a user shares her adjacent bit vector ``A_i``: every bit is
    masked independently, so each server receives a vector of uniformly
    random ring elements.
    """
    generator = derive_rng(rng)
    encoded = ring.encode(np.asarray(values))
    mask = ring.random_array(encoded.shape, generator)
    return SharePair(share1=mask, share2=ring.sub(encoded, mask), ring=ring)


def share_per_user(
    encoded: np.ndarray, ring: Ring = DEFAULT_RING, rng: RandomState = None
) -> SharePair:
    """Share one ring element per user, each masked from the user's own stream.

    Unlike :func:`share_vector` (one generator masks the whole array), entry
    ``i`` here is masked by a value drawn from the ``i``-th child of *rng* —
    the non-coordinating pattern of
    :func:`~repro.core.backends.base.share_adjacency_rows`, where every user
    spawns her own substream and draws exactly one mask from it.  This is the
    upload step of the sparse degree-local kernels (k-stars, wedges): *encoded*
    holds each user's already-ring-encoded contribution, and the servers
    receive one uniformly masked scalar per user — ``O(n)`` memory end to end.

    The mask sequence is bit-identical to the historical per-user loop in the
    k-star kernel, which is what keeps sparse and dense transcripts equal.
    """
    values = np.ascontiguousarray(encoded, dtype=ring.dtype)
    if values.ndim != 1:
        raise ShareError(
            f"share_per_user expects a 1-D array of contributions, got shape {values.shape}"
        )
    num_users = values.shape[0]
    masks = np.empty((num_users,), dtype=ring.dtype)
    user_rngs = spawn_rngs(rng if rng is not None else derive_rng(None), num_users)
    for user, user_rng in enumerate(user_rngs):
        masks[user] = ring.random_element(user_rng)
    return SharePair(share1=masks, share2=ring.sub(values, masks), ring=ring)


def share_matrix(
    values: np.ndarray, ring: Ring = DEFAULT_RING, rng: RandomState = None
) -> SharePair:
    """Additively share a 2-D integer array element-wise (adjacency matrices)."""
    matrix = np.asarray(values)
    if matrix.ndim != 2:
        raise ShareError(f"share_matrix expects a 2-D array, got shape {matrix.shape}")
    return share_vector(matrix, ring=ring, rng=rng)


def reconstruct(share1: int, share2: int, ring: Ring = DEFAULT_RING, signed: bool = False) -> int:
    """Reconstruct a scalar secret from its two shares."""
    combined = ring.add(int(share1), int(share2))
    return ring.decode_signed(combined) if signed else combined


def reconstruct_vector(
    share1: np.ndarray, share2: np.ndarray, ring: Ring = DEFAULT_RING, signed: bool = False
) -> np.ndarray:
    """Reconstruct an array secret from its two share arrays."""
    first = np.asarray(share1, dtype=ring.dtype)
    second = np.asarray(share2, dtype=ring.dtype)
    if first.shape != second.shape:
        raise ShareError(
            f"share shapes differ: {first.shape} vs {second.shape}"
        )
    combined = ring.add(first, second)
    if signed:
        decoded = ring.decode_signed(combined)
        return np.asarray(decoded, dtype=object)
    return combined


def zero_share_pair(shape: Tuple[int, ...] | None, ring: Ring = DEFAULT_RING) -> SharePair:
    """A trivially-shared zero (both shares zero); useful as an accumulator seed."""
    if shape is None:
        return SharePair(share1=0, share2=0, ring=ring)
    zeros = np.zeros(shape, dtype=ring.dtype)
    return SharePair(share1=zeros, share2=zeros.copy(), ring=ring)
