"""Cryptographic substrate: two-party additive secret sharing over Z_{2^l}.

CARGO's online protocol runs between two semi-honest, non-colluding servers.
This subpackage implements the machinery the protocol is built from:

* :mod:`repro.crypto.ring` — modular arithmetic in the ring ``Z_{2^l}``
  (scalar and numpy-vectorised),
* :mod:`repro.crypto.sharing` — additive secret sharing (share, reconstruct,
  local addition, scalar multiplication),
* :mod:`repro.crypto.beaver` — Beaver triples for secure two-party
  multiplication and a trusted-dealer simulation of the offline phase,
* :mod:`repro.crypto.multiplication_groups` — the paper's *multiplication
  groups* (Section III-D): correlated randomness for multiplying **three**
  secret-shared values in a single opening round,
* :mod:`repro.crypto.ot` — a simulated 1-out-of-2 oblivious transfer used to
  justify (and test) the dealer abstraction,
* :mod:`repro.crypto.protocol` — party / channel simulation with byte-level
  communication accounting,
* :mod:`repro.crypto.secure_ops` — two-server secure addition, two-way and
  three-way multiplication, and secret-shared matrix products,
* :mod:`repro.crypto.views` — transcript recording used by the
  simulation-based security tests,
* :mod:`repro.crypto.mac` — SPDZ-style information-theoretic MACs on every
  opening round, upgrading the semi-honest transcript to one that detects a
  single actively cheating server (``CargoConfig(authenticate=True)``).
"""

from repro.crypto.ring import Ring, DEFAULT_RING
from repro.crypto.sharing import (
    SharePair,
    reconstruct,
    reconstruct_vector,
    share_matrix,
    share_per_user,
    share_scalar,
    share_vector,
)
from repro.crypto.beaver import BeaverTriple, BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroup, MultiplicationGroupDealer
from repro.crypto.ot import ObliviousTransferChannel
from repro.crypto.protocol import Channel, CommunicationLedger, Party, TwoServerRuntime
from repro.crypto.secure_ops import (
    secure_add,
    secure_multiply_pair,
    secure_multiply_triple,
    secure_matrix_multiply,
)
from repro.crypto.mac import (
    AuthenticatedShare,
    MacKey,
    OpeningAuthenticator,
    OpeningMessage,
    OpeningRound,
    resolve_authenticator,
)
from repro.crypto.views import ProtocolView, ViewRecorder
from repro.exceptions import CheaterDetectedError

__all__ = [
    "Ring",
    "DEFAULT_RING",
    "SharePair",
    "share_scalar",
    "share_vector",
    "share_matrix",
    "share_per_user",
    "reconstruct",
    "reconstruct_vector",
    "BeaverTriple",
    "BeaverTripleDealer",
    "MultiplicationGroup",
    "MultiplicationGroupDealer",
    "ObliviousTransferChannel",
    "Party",
    "Channel",
    "CommunicationLedger",
    "TwoServerRuntime",
    "secure_add",
    "secure_multiply_pair",
    "secure_multiply_triple",
    "secure_matrix_multiply",
    "ProtocolView",
    "ViewRecorder",
    "AuthenticatedShare",
    "CheaterDetectedError",
    "MacKey",
    "OpeningAuthenticator",
    "OpeningMessage",
    "OpeningRound",
    "resolve_authenticator",
]
