"""Arithmetic in the ring ``Z_{2^l}``.

Additive secret sharing in CARGO represents every value as an ``l``-bit
integer and performs all arithmetic modulo ``2^l`` (Section II-C).  The
:class:`Ring` class centralises that arithmetic for Python integers and for
numpy arrays, and provides the signed decoding used to map ring elements back
to (possibly negative) integers such as noise values or centred shares.

Implementation note: vectorised operations use ``numpy.uint64`` with ``l = 64``
by default, where modular wrap-around is native; other widths mask explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import RandomState, derive_rng

IntOrArray = Union[int, np.ndarray]


@dataclass(frozen=True)
class Ring:
    """The ring ``Z_{2^bits}`` with helpers for encode/decode and sampling.

    Parameters
    ----------
    bits:
        Bit width ``l`` of ring elements.  Must be between 2 and 64.  CARGO's
        default of 64 bits leaves ample headroom: the largest value that the
        protocol aggregates is the triangle count plus noise, far below
        ``2^63``.
    """

    bits: int = 64

    def __post_init__(self) -> None:
        if not (2 <= self.bits <= 64):
            raise ConfigurationError(f"ring bit width must be in [2, 64], got {self.bits}")

    # ------------------------------------------------------------------ #
    # Basic constants
    # ------------------------------------------------------------------ #
    @property
    def modulus(self) -> int:
        """The ring modulus ``2^bits``."""
        return 1 << self.bits

    @property
    def mask(self) -> int:
        """Bit mask ``2^bits - 1`` used to reduce Python integers."""
        return self.modulus - 1

    @property
    def half(self) -> int:
        """The signed/unsigned boundary ``2^(bits-1)``."""
        return 1 << (self.bits - 1)

    @property
    def dtype(self) -> np.dtype:
        """Numpy dtype used for vectorised ring arrays."""
        return np.dtype(np.uint64)

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(self, value: IntOrArray) -> IntOrArray:
        """Map a (signed) integer or integer array into the ring.

        Negative integers wrap around, so ``encode(-1) == modulus - 1``.
        Arrays already stored in the ring dtype may be returned without a
        copy, so callers must treat the result as read-only.

        Examples
        --------
        >>> ring = Ring(bits=16)
        >>> ring.encode(-1)
        65535
        >>> ring.decode_signed(ring.add(ring.encode(-5), ring.encode(12)))
        7
        """
        if isinstance(value, np.ndarray):
            if value.dtype == self.dtype:
                if self.bits == 64:
                    return value
                return value & self.dtype.type(self.mask)
            return np.asarray(value).astype(np.int64).astype(self.dtype) & self.dtype.type(self.mask)
        return int(value) & self.mask

    def decode_signed(self, value: IntOrArray) -> IntOrArray:
        """Map ring elements back to signed integers in ``[-2^(l-1), 2^(l-1))``."""
        if isinstance(value, np.ndarray):
            unsigned = np.asarray(value, dtype=self.dtype).astype(object)
            return np.where(unsigned >= self.half, unsigned - self.modulus, unsigned).astype(object)
        unsigned = int(value) & self.mask
        return unsigned - self.modulus if unsigned >= self.half else unsigned

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a: IntOrArray, b: IntOrArray) -> IntOrArray:
        """``(a + b) mod 2^l``."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            out = np.asarray(a, dtype=self.dtype) + np.asarray(b, dtype=self.dtype)
            # uint64 addition wraps modulo 2^64 natively; only narrower rings
            # need the explicit reduction pass.
            return out if self.bits == 64 else out & self.dtype.type(self.mask)
        return (int(a) + int(b)) & self.mask

    def sub(self, a: IntOrArray, b: IntOrArray) -> IntOrArray:
        """``(a - b) mod 2^l``."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            out = np.asarray(a, dtype=self.dtype) - np.asarray(b, dtype=self.dtype)
            return out if self.bits == 64 else out & self.dtype.type(self.mask)
        return (int(a) - int(b)) & self.mask

    def mul(self, a: IntOrArray, b: IntOrArray) -> IntOrArray:
        """``(a * b) mod 2^l``."""
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            out = np.asarray(a, dtype=self.dtype) * np.asarray(b, dtype=self.dtype)
            return out if self.bits == 64 else out & self.dtype.type(self.mask)
        return (int(a) * int(b)) & self.mask

    def sum(self, values: np.ndarray) -> int:
        """Reduce a share vector to a single ring element, ``sum(values) mod 2^l``.

        This is the one reduction every backend performs after an opening
        round (accumulating product shares into the running count share).
        uint64 accumulation wraps modulo ``2^64`` natively, so the result only
        needs masking for narrower rings.
        """
        total = int(np.sum(np.asarray(values, dtype=self.dtype), dtype=np.uint64))
        return total & self.mask

    def neg(self, a: IntOrArray) -> IntOrArray:
        """``(-a) mod 2^l``."""
        return self.sub(0, a) if not isinstance(a, np.ndarray) else self.sub(np.zeros_like(np.asarray(a, dtype=self.dtype)), a)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product in the ring (element-wise reduction mod ``2^l``).

        Matrix products of uint64 arrays are computed with Python-object
        precision only when the bit width is below 64; at the default 64-bit
        width native uint64 wrap-around is exactly reduction modulo ``2^64``.
        """
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        # Two's-complement int64 multiplication and addition wrap modulo 2^64,
        # so reinterpreting the uint64 operands as int64, multiplying, and
        # reinterpreting back computes the product in Z_{2^64} exactly.  For
        # narrower rings the result is masked down afterwards.
        product = (a.view(np.int64) @ b.view(np.int64)).view(np.uint64)
        if self.bits < 64:
            product = product & self.dtype.type(self.mask)
        return product.astype(self.dtype)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def random_element(self, rng: RandomState = None) -> int:
        """Uniformly random ring element (a single mask value)."""
        generator = derive_rng(rng)
        return int(generator.integers(0, self.modulus, dtype=np.uint64)) & self.mask

    def random_array(self, shape, rng: RandomState = None) -> np.ndarray:
        """Array of uniformly random ring elements with the given *shape*."""
        generator = derive_rng(rng)
        raw = generator.integers(0, self.modulus if self.bits < 64 else np.iinfo(np.uint64).max,
                                 size=shape, dtype=np.uint64, endpoint=self.bits == 64)
        if self.bits == 64:
            return raw
        return np.asarray(raw, dtype=self.dtype) & self.dtype.type(self.mask)


#: The ring used throughout CARGO unless a caller overrides it.
DEFAULT_RING = Ring(bits=64)
