"""Protocol view recording for simulation-based security checks.

The paper's security argument (Theorem 2) follows the simulation paradigm: a
protocol is secure if each server's *view* — everything it receives during
the execution — can be simulated without knowledge of the private inputs.

For additive secret sharing the simulation is trivial because every message a
server sees is either a fresh uniform ring element (a share) or a
mask-difference that is itself uniform.  The test suite checks the empirical
counterpart of this statement: recorded view values are (a) identical across
re-runs with the same masks, (b) statistically indistinguishable from uniform
when masks are resampled, and (c) independent of the underlying secret.

:class:`ViewRecorder` is the hook the secure operations use to expose what
each server observed; it is inert (and free) when not supplied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class ViewEntry:
    """A single observation made by one server during a protocol run."""

    server_index: int
    label: str
    value: Any


@dataclass
class ProtocolView:
    """Everything one server observed during a protocol execution."""

    server_index: int
    entries: List[ViewEntry] = field(default_factory=list)

    def values(self, label: str | None = None) -> List[Any]:
        """All observed values, optionally restricted to a message *label*."""
        return [
            entry.value
            for entry in self.entries
            if label is None or entry.label == label
        ]

    def __len__(self) -> int:
        return len(self.entries)


class ViewRecorder:
    """Collects the views of both servers for one protocol execution."""

    def __init__(self) -> None:
        self._views: Dict[int, ProtocolView] = {
            1: ProtocolView(server_index=1),
            2: ProtocolView(server_index=2),
        }

    def observe(self, server_index: int, label: str, value: Any) -> None:
        """Record that server *server_index* observed *value* under *label*."""
        if server_index not in self._views:
            raise ProtocolError(f"server index must be 1 or 2, got {server_index}")
        self._views[server_index].entries.append(
            ViewEntry(server_index=server_index, label=label, value=value)
        )

    def view(self, server_index: int) -> ProtocolView:
        """The full view of server *server_index*."""
        if server_index not in self._views:
            raise ProtocolError(f"server index must be 1 or 2, got {server_index}")
        return self._views[server_index]

    def views(self) -> Tuple[ProtocolView, ProtocolView]:
        """Both servers' views as a ``(view_S1, view_S2)`` tuple."""
        return self._views[1], self._views[2]
