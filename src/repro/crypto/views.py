"""Protocol view recording for simulation-based security checks.

The paper's security argument (Theorem 2) follows the simulation paradigm: a
protocol is secure if each server's *view* — everything it receives during
the execution — can be simulated without knowledge of the private inputs.

For additive secret sharing the simulation is trivial because every message a
server sees is either a fresh uniform ring element (a share) or a
mask-difference that is itself uniform.  The test suite checks the empirical
counterpart of this statement: recorded view values are (a) identical across
re-runs with the same masks, (b) statistically indistinguishable from uniform
when masks are resampled, and (c) independent of the underlying secret.

:class:`ViewRecorder` is the hook the secure operations use to expose what
each server observed; it is inert (and free) when not supplied.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.exceptions import ProtocolError


@dataclass(frozen=True)
class ViewEntry:
    """A single observation made by one server during a protocol run."""

    server_index: int
    label: str
    value: Any


@dataclass
class ProtocolView:
    """Everything one server observed during a protocol execution."""

    server_index: int
    entries: List[ViewEntry] = field(default_factory=list)

    def values(self, label: str | None = None) -> List[Any]:
        """All observed values, optionally restricted to a message *label*."""
        return [
            entry.value
            for entry in self.entries
            if label is None or entry.label == label
        ]

    def __len__(self) -> int:
        return len(self.entries)


class ViewRecorder:
    """Collects the views of both servers for one protocol execution.

    Appends are serialised with a lock so concurrent protocol stages (the
    tile-parallel engine, parallel sweep trials sharing a recorder) cannot
    corrupt the entry lists.  A lock alone cannot make the *order* of
    concurrent appends deterministic, so the parallel engine records each
    unit of work into its own shard and merges the shards in canonical
    schedule order via :meth:`merge_from` — which is what keeps recorded
    transcripts bit-identical for any worker count.
    """

    def __init__(self) -> None:
        self._views: Dict[int, ProtocolView] = {
            1: ProtocolView(server_index=1),
            2: ProtocolView(server_index=2),
        }
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        # Checkpoints pickle recorders; the lock is runtime-only state and is
        # recreated fresh on unpickle.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def observe(self, server_index: int, label: str, value: Any) -> None:
        """Record that server *server_index* observed *value* under *label*."""
        if server_index not in self._views:
            raise ProtocolError(f"server index must be 1 or 2, got {server_index}")
        entry = ViewEntry(server_index=server_index, label=label, value=value)
        with self._lock:
            self._views[server_index].entries.append(entry)

    def merge_from(self, shard: "ViewRecorder") -> None:
        """Append every entry of *shard* (both servers), preserving its order.

        The parallel engine calls this once per unit of work, in canonical
        schedule order, after all workers have finished — so the merged
        recorder is indistinguishable from one written by a serial run of
        the same schedule.

        A malformed *shard* — not a recorder at all, or a recorder whose
        per-server structure was tampered with (missing server, entries for
        a foreign server index, non-entry payloads) — raises a typed
        :class:`~repro.exceptions.ProtocolError` instead of corrupting the
        merged transcript or surfacing a raw attribute/numpy error later.
        """
        shard_views = getattr(shard, "_views", None)
        if not isinstance(shard_views, dict):
            raise ProtocolError(
                f"merge_from expects a ViewRecorder shard, got {type(shard).__name__}"
            )
        if set(shard_views) != set(self._views):
            raise ProtocolError(
                "view shard does not cover both servers: has views for "
                f"{sorted(shard_views)}, expected {sorted(self._views)}"
            )
        for server_index, view in shard_views.items():
            entries = getattr(view, "entries", None)
            if entries is None:
                raise ProtocolError(
                    f"view shard for server {server_index} has no entries list"
                )
            for entry in entries:
                if not isinstance(entry, ViewEntry):
                    raise ProtocolError(
                        f"view shard for server {server_index} holds a "
                        f"{type(entry).__name__}, expected ViewEntry"
                    )
                if entry.server_index != server_index:
                    raise ProtocolError(
                        f"view shard entry labelled {entry.label!r} belongs to "
                        f"server {entry.server_index} but was filed under "
                        f"server {server_index}"
                    )
        with self._lock:
            for server_index, view in self._views.items():
                view.entries.extend(shard_views[server_index].entries)

    def view(self, server_index: int) -> ProtocolView:
        """The full view of server *server_index*."""
        if server_index not in self._views:
            raise ProtocolError(f"server index must be 1 or 2, got {server_index}")
        return self._views[server_index]

    def views(self) -> Tuple[ProtocolView, ProtocolView]:
        """Both servers' views as a ``(view_S1, view_S2)`` tuple."""
        return self._views[1], self._views[2]
