"""SPDZ-style information-theoretic MACs for authenticated openings.

The semi-honest protocol reconstructs every opened value as ``d = d1 + d2``
and trusts both servers to send their true shares.  This module upgrades the
opening step to *covert/malicious detection*: a per-run global MAC key
``alpha`` is additively shared between the servers, every opened value ``d``
carries an authentication tag ``t = alpha * d`` (also additively shared), and
after each opening round the servers run a batched MAC check

``sigma_i = t_i - alpha_i * d`` with the acceptance condition
``sigma_1 + sigma_2 == 0``  (elementwise over the whole round).

Because ``alpha`` is forced odd it is a unit of ``Z_{2^64}``, so a one-sided
tamper ``d -> d + delta`` with ``delta != 0`` shifts the check by
``alpha * delta != 0`` and is detected with probability 1.  An adversary that
additionally forges its tag share must pick ``delta_t == alpha * delta_v``
without knowing ``alpha`` — success probability at most ``2^-63`` over the
secret odd key.  Detection is *anonymous* in the SPDZ sense: the check proves
that cheating happened, not which server cheated.

Two deliberate simplifications, mirroring the repo's trusted-dealer offline
phase (the dealer already learns ``z = x * y`` of every Beaver triple):

* tag shares are issued by the same trusted dealer role — the authenticator
  computes the honest tag ``t = alpha * d`` and splits it with a dedicated,
  domain-separated tag RNG, rather than running a secure ``alpha * d``
  multiplication online;
* the MAC key and tag randomness derive from ``stable_seed_from_name`` over
  the run seed, so they never consume the protocol's own substreams — honest
  authenticated runs release counts **bit-identical** to unauthenticated
  runs.

Examples
--------
An honest exchange opens the same values plain reconstruction would:

>>> from repro.crypto.mac import OpeningAuthenticator
>>> auth = OpeningAuthenticator(seed=7)
>>> auth.exchange("demo", [(3, 4)])
[7]
>>> auth.rounds_checked, auth.values_checked
(1, 1)

A server that lies in an opening is caught by the very next MAC check:

>>> def lie(round):
...     round.messages[0].values[0] += 1
>>> cheat = OpeningAuthenticator(seed=7, tamper=lie)
>>> try:
...     cheat.exchange("demo", [(3, 4)])
... except Exception as error:
...     print(type(error).__name__, error.label, error.round_index)
CheaterDetectedError demo 0
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.crypto.ring import DEFAULT_RING, Ring
from repro.exceptions import CheaterDetectedError, ConfigurationError
from repro.utils.rng import derive_rng, stable_seed_from_name

IntOrArray = Union[int, np.ndarray]

__all__ = [
    "AuthenticatedShare",
    "CheaterDetectedError",
    "MacKey",
    "OpeningAuthenticator",
    "OpeningMessage",
    "OpeningRound",
    "resolve_authenticator",
]

#: Domain-separation labels for the key and tag substreams.  Deriving them
#: via :func:`~repro.utils.rng.stable_seed_from_name` keeps the protocol's
#: own ``spawn_rngs`` substreams untouched, which is what makes honest
#: authenticated releases bit-identical to unauthenticated ones.
_KEY_DOMAIN = "mac/key"
_TAG_DOMAIN = "mac/tags"


@dataclass(frozen=True)
class MacKey:
    """Additive shares of the global MAC key ``alpha = alpha1 + alpha2``.

    ``alpha`` is forced odd, making it a unit of ``Z_{2^l}``: any nonzero
    value tamper ``delta`` yields a nonzero check offset ``alpha * delta``,
    so single-sided tampering is detected with probability 1 (not just with
    high probability, as over a field with a uniform key).
    """

    alpha1: int
    alpha2: int

    def alpha(self, ring: Ring = DEFAULT_RING) -> int:
        """The reconstructed key (test/dealer-side only; servers never see it)."""
        return ring.add(self.alpha1, self.alpha2)

    @classmethod
    def generate(cls, seed: int, ring: Ring = DEFAULT_RING) -> "MacKey":
        """Deal a fresh key from a domain-separated stream of *seed*."""
        rng = derive_rng(stable_seed_from_name(_KEY_DOMAIN, seed))
        alpha = ring.random_element(rng) | 1  # force odd: a unit of Z_{2^l}
        alpha1 = ring.random_element(rng)
        return cls(alpha1=alpha1, alpha2=ring.sub(alpha, alpha1))


@dataclass(frozen=True)
class AuthenticatedShare:
    """A secret with both value shares and MAC-tag shares attached.

    The invariant is ``tag1 + tag2 == alpha * (value1 + value2)``; breaking
    it on either side is exactly what :meth:`check` (and the batched round
    check in :class:`OpeningAuthenticator`) detects.
    """

    value1: IntOrArray
    value2: IntOrArray
    tag1: IntOrArray
    tag2: IntOrArray

    def open(self, key: MacKey, ring: Ring = DEFAULT_RING) -> IntOrArray:
        """Reconstruct the value, raising on a failed MAC check."""
        opened = ring.add(self.value1, self.value2)
        if not self.check(key, ring=ring):
            raise CheaterDetectedError(
                "authenticated share failed its MAC check", label="share"
            )
        return opened

    def check(self, key: MacKey, ring: Ring = DEFAULT_RING) -> bool:
        """Whether the tag shares authenticate the value shares."""
        opened = ring.add(self.value1, self.value2)
        sigma1 = ring.sub(self.tag1, ring.mul(key.alpha1, opened))
        sigma2 = ring.sub(self.tag2, ring.mul(key.alpha2, opened))
        residual = ring.add(sigma1, sigma2)
        if isinstance(residual, np.ndarray):
            return not np.any(residual)
        return residual == 0


@dataclass
class OpeningMessage:
    """What one server contributes to an opening round: value + tag shares.

    Deliberately mutable — the active-adversary harness tampers with these
    fields in-place through the authenticator's ``tamper`` hook.
    """

    server_index: int
    values: np.ndarray
    tags: np.ndarray


@dataclass
class OpeningRound:
    """One batched opening round as both servers' messages, pre-check."""

    index: int
    label: str
    messages: Tuple[OpeningMessage, OpeningMessage]


#: A tamper hook mutates the round in place (or leaves it alone).
TamperHook = Callable[[OpeningRound], None]


class OpeningAuthenticator:
    """Batched MAC-checked reconstruction of opened values.

    Parameters
    ----------
    seed:
        Run seed; the MAC key and tag randomness are derived from
        domain-separated streams of it, so two authenticators built from the
        same seed issue identical tags (deterministic replay).
    key:
        Explicit :class:`MacKey` override (tests); default derives from *seed*.
    ring:
        Ring the shares live in.
    tamper:
        Optional hook called with each :class:`OpeningRound` between tag
        issuance and the MAC check — the active-adversary injection point.

    The authenticator is shared by all workers of a parallel count, so the
    round counter and tag draws are guarded by a lock.  Round indices are
    deterministic for serial runs; under a thread pool the *order* in which
    rounds are checked (and hence their indices) may vary run to run.
    """

    def __init__(
        self,
        seed: int = 0,
        key: Optional[MacKey] = None,
        ring: Ring = DEFAULT_RING,
        tamper: Optional[TamperHook] = None,
    ) -> None:
        self._ring = ring
        self._seed = int(seed)
        self._key = key if key is not None else MacKey.generate(self._seed, ring)
        self._tag_rng = derive_rng(stable_seed_from_name(_TAG_DOMAIN, self._seed))
        self._tamper = tamper
        self._enabled = True
        self._lock = threading.Lock()
        self._rounds_started = 0
        self.rounds_checked = 0
        self.values_checked = 0

    @classmethod
    def disabled(cls, ring: Ring = DEFAULT_RING) -> "OpeningAuthenticator":
        """An inert authenticator: plain reconstruction, no tags, no checks.

        The perf-gate A/B arm — carrying it through the call chain costs the
        same argument plumbing as a live authenticator while keeping the
        arithmetic identical to an unauthenticated run (analogous to
        ``Telemetry.disabled()``).
        """
        instance = cls(seed=0, ring=ring)
        instance._enabled = False
        return instance

    @property
    def enabled(self) -> bool:
        """Whether openings are actually tagged and checked."""
        return self._enabled

    @property
    def key(self) -> MacKey:
        """The dealt MAC key (dealer/test-side view)."""
        return self._key

    # ------------------------------------------------------------------ #
    # The one entry point the secure operations call
    # ------------------------------------------------------------------ #
    def exchange(
        self, label: str, pairs: Sequence[Tuple[IntOrArray, IntOrArray]]
    ) -> List[IntOrArray]:
        """Open every share pair of one round under a batched MAC check.

        All pairs of the round are flattened into a single value vector, a
        single tag vector is dealt for it, the (possibly tampered) messages
        are checked in one shot, and the opened values are returned with
        their original shapes — scalars in, scalars out; matrices in,
        matrices out.  For honest messages the result is bit-identical to
        ``ring.add(share1, share2)`` per pair.

        Raises
        ------
        CheaterDetectedError
            If a message was truncated / reshaped / retyped, or the batched
            MAC check does not verify.
        """
        if not self._enabled:
            return [self._ring.add(s1, s2) for s1, s2 in pairs]
        ring = self._ring
        if not pairs:
            return []

        # Flatten every pair into one batch, remembering how to restore it.
        parts1: List[np.ndarray] = []
        parts2: List[np.ndarray] = []
        layout: List[Tuple[bool, Tuple[int, ...], int]] = []  # (scalar?, shape, size)
        for share1, share2 in pairs:
            scalar = not (isinstance(share1, np.ndarray) or isinstance(share2, np.ndarray))
            a1 = np.atleast_1d(np.asarray(share1, dtype=ring.dtype))
            a2 = np.atleast_1d(np.asarray(share2, dtype=ring.dtype))
            if a1.shape != a2.shape:
                raise CheaterDetectedError(
                    f"opening {label!r}: server share shapes disagree "
                    f"({a1.shape} vs {a2.shape})",
                    label=label,
                )
            layout.append((scalar, a1.shape, a1.size))
            parts1.append(a1.ravel())
            parts2.append(a2.ravel())
        values1 = np.concatenate(parts1) if len(parts1) > 1 else parts1[0].ravel()
        values2 = np.concatenate(parts2) if len(parts2) > 1 else parts2[0].ravel()
        total = int(values1.size)

        with self._lock:
            round_index = self._rounds_started
            self._rounds_started += 1
            # Deal the tag shares: honest tag t = alpha * d, split with the
            # dedicated tag stream (trusted-dealer shortcut, see module doc).
            honest = ring.add(values1, values2)
            tags = ring.mul(self._key.alpha(ring), honest)
            tags1 = ring.random_array(total, self._tag_rng)
            tags2 = ring.sub(tags, tags1)
            opening = OpeningRound(
                index=round_index,
                label=label,
                messages=(
                    OpeningMessage(1, values1.copy(), tags1),
                    OpeningMessage(2, values2.copy(), tags2),
                ),
            )
            if self._tamper is not None:
                self._tamper(opening)
            self._validate_messages(opening, total)
            message1, message2 = opening.messages
            opened = ring.add(message1.values, message2.values)
            sigma1 = ring.sub(message1.tags, ring.mul(self._key.alpha1, opened))
            sigma2 = ring.sub(message2.tags, ring.mul(self._key.alpha2, opened))
            residual = ring.add(sigma1, sigma2)
            if np.any(residual):
                position = int(np.flatnonzero(residual)[0])
                raise CheaterDetectedError(
                    f"MAC check failed in opening round {round_index} "
                    f"({label!r}): {int(np.count_nonzero(residual))} of "
                    f"{total} opened values carry inconsistent tags "
                    f"(first at position {position}) — a server cheated",
                    label=label,
                    round_index=round_index,
                )
            self.rounds_checked += 1
            self.values_checked += total

        # Restore per-pair shapes; scalars come back as Python ints so the
        # opened values are indistinguishable from plain reconstruction.
        results: List[IntOrArray] = []
        offset = 0
        for scalar, shape, size in layout:
            chunk = opened[offset : offset + size]
            offset += size
            if scalar:
                results.append(int(chunk[0]))
            else:
                results.append(chunk.reshape(shape))
        return results

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate_messages(self, opening: OpeningRound, expected: int) -> None:
        """Reject truncated / reshaped / retyped messages as cheating.

        A server that drops values from a round (truncation) or swaps in a
        different dtype is lying about the round's layout; that is cheating
        of the same severity as a bad tag, so it gets the same typed abort
        instead of a downstream numpy broadcasting error.
        """
        for message in opening.messages:
            values = np.asarray(message.values)
            tags = np.asarray(message.tags)
            if values.shape != (expected,) or tags.shape != (expected,):
                raise CheaterDetectedError(
                    f"opening round {opening.index} ({opening.label!r}): "
                    f"server {message.server_index} sent a malformed round "
                    f"(expected {expected} values, got values {values.shape}, "
                    f"tags {tags.shape}) — truncation detected",
                    label=opening.label,
                    round_index=opening.index,
                )
            if values.dtype != self._ring.dtype or tags.dtype != self._ring.dtype:
                raise CheaterDetectedError(
                    f"opening round {opening.index} ({opening.label!r}): "
                    f"server {message.server_index} sent dtype "
                    f"{values.dtype}/{tags.dtype}, expected {self._ring.dtype}",
                    label=opening.label,
                    round_index=opening.index,
                )


def resolve_authenticator(config) -> Optional[OpeningAuthenticator]:
    """The authenticator a run should use, or ``None`` for plain openings.

    Mirrors ``resolve_telemetry``/``resolve_resilience``: an injected
    ``config.authenticator`` (tests, the adversary harness, the perf gate's
    inert arm) wins; otherwise ``config.authenticate=True`` builds a fresh
    authenticator from the run seed — deterministic, so two runs of the same
    config deal the same key and tags.
    """
    injected = getattr(config, "authenticator", None)
    if injected is not None:
        if not callable(getattr(injected, "exchange", None)):
            raise ConfigurationError(
                "config.authenticator must expose an "
                "exchange(label, pairs) method, got "
                f"{type(injected).__name__}"
            )
        return injected
    if getattr(config, "authenticate", False):
        return OpeningAuthenticator(seed=int(getattr(config, "seed", 0) or 0))
    return None
