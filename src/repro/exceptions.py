"""Exception hierarchy for the CARGO reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between configuration problems, protocol
violations, and privacy-accounting mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent configuration was supplied."""


class GraphError(ReproError):
    """A graph is malformed (e.g. asymmetric adjacency, self-loop, bad id)."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ProtocolError(ReproError):
    """A secure-computation protocol was driven outside its contract.

    Examples include reconstructing a share pair that belongs to different
    secrets, reusing a one-time Beaver triple, or a server receiving a
    message it should never see under the semi-honest model.
    """


class ShareError(ProtocolError):
    """Secret shares are inconsistent (wrong ring, wrong party, reuse)."""


class DealerError(ProtocolError):
    """The offline correlated-randomness dealer was misused or exhausted."""


class CheaterDetectedError(ProtocolError):
    """An authenticated opening failed its MAC check — a server cheated.

    Raised by the :class:`~repro.crypto.mac.OpeningAuthenticator` when the
    batched SPDZ-style MAC check over an opening round does not verify:
    some server sent a value inconsistent with its tag share (a flipped
    share, a lie in an opening, a truncated round).  Carries the *label* of
    the opening round (e.g. ``"beaver_opening"``) and its zero-based
    *round_index* so a cheating round can be named precisely.  Note the MAC
    detects *that* cheating happened, not *which* server cheated — see
    ``docs/verification.md``.
    """

    def __init__(self, message: str, label: str = "", round_index: int = -1) -> None:
        super().__init__(message)
        self.label = label
        self.round_index = round_index


class WireFormatError(ProtocolError):
    """A transport frame violated the binary wire format.

    Raised while decoding frames exchanged by the process-separated runtime:
    wrong magic, an unsupported wire version, an unknown message kind, a
    length field that disagrees with the bytes on the socket, a truncated
    frame (EOF mid-message), or an out-of-order sequence number.  The frame
    is rejected before any payload bytes are interpreted as shares.
    """


class RuntimeProcessError(ReproError):
    """A peer process of the distributed runtime died or misbehaved.

    Raised by the driver when a server or dealer process exits unexpectedly
    (EOF on its control link), reports an error frame, or when the post-run
    ledger/wire reconciliation finds logical byte counts that do not match
    the bytes actually written to the transport.
    """


class PrivacyError(ReproError):
    """A differential-privacy precondition is violated.

    Raised for non-positive privacy budgets, negative sensitivities, or
    attempts to spend more budget than an accountant has left.
    """


class BudgetExhaustedError(PrivacyError):
    """A privacy accountant has no remaining budget for the requested spend."""


class ExperimentError(ReproError):
    """An experiment specification is unknown or produced no results."""


class IntegrityError(ReproError):
    """Persisted protocol material failed its content-checksum verification.

    Raised (or counted, on the gracefully-degrading paths) when a spilled
    triple batch, a checkpoint file, or any other persisted artefact does not
    hash to the checksum recorded when it was written — a bit flip, a
    truncated write, or manual tampering.  Corrupt correlated randomness is
    never served to the protocol: the loader either raises this error or
    falls back to re-dealing fresh material.
    """


class CheckpointError(ReproError):
    """A crash-recovery checkpoint is missing, incompatible, or misused.

    Examples include resuming from a checkpoint written by a different
    configuration or stream, a schema-version mismatch, or a checkpoint of
    the wrong kind (a streaming checkpoint fed to the tile journal).
    Checksum failures raise :class:`IntegrityError` instead.
    """


class RetryExhaustedError(ReproError):
    """A fallible boundary kept failing after every allowed retry attempt.

    Carries the *site* label of the boundary and the number of *attempts*
    made; the final underlying failure is chained as ``__cause__``.
    """

    def __init__(self, message: str, site: str = "", attempts: int = 0) -> None:
        super().__init__(message)
        self.site = site
        self.attempts = attempts


class StreamError(ReproError):
    """An edge-event stream is malformed or a continual release was misused.

    Examples include events that reference nodes outside the stream's node
    range, non-monotone timestamps, or asking a binary-tree release mechanism
    for more releases than the capacity it was budgeted for.
    """
