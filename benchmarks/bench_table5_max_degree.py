"""Table V — noisy maximum degree under varying epsilon."""

from __future__ import annotations

from repro.experiments.tables import table5_noisy_max_degree


def test_table5_noisy_max_degree(benchmark, bench_num_nodes, bench_trials):
    """Regenerate Table V: d'_max for epsilon in 0.5 .. 3 on the four main graphs."""
    report = benchmark.pedantic(
        lambda: table5_noisy_max_degree(
            num_nodes=bench_num_nodes, num_trials=bench_trials
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    assert len(report.rows) == 4
    # Paper shape: the noisy estimate approaches d_max, and higher epsilon
    # never makes it wildly worse.
    for row in report.rows:
        assert row["eps=3.0"] > 0
        assert abs(row["eps=3.0"] - row["d_max"]) <= abs(row["eps=0.5"] - row["d_max"]) + row["d_max"]
