"""In-process vs process-separated runtime wall-clock comparison.

Runs the same matrix-backend release twice per graph size — once on the
in-process engine (one Python process computes both servers' halves
serially) and once on a persistent :class:`~repro.runtime.DistributedRuntime`
(dealer and both servers as forked OS processes, every protocol message on
a socket) — and reports the wall-clock ratio.  Releases are asserted
bit-identical before any timing is trusted, so the ratio compares the same
computation, not two different protocols.

On a multi-core host the two server processes overlap their halves of the
secure count, which is where process separation pays: the committed gate
requires a ``SPEEDUP_TARGET`` speedup at ``n = 256`` whenever the host has
at least two CPUs.  On a single-core host no overlap is physically possible
— the distributed run then measures pure transport overhead — so the row is
reported informationally (``gated: false``) instead of failing, and every
row records ``host_cpus`` and the 1-minute load average so a reader can
tell which regime produced it.

Rows are emitted as JSON (``benchmarks/results/distributed_runtime.json``
by default, override with ``REPRO_BENCH_DISTRIBUTED_OUTPUT``).

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed_runtime.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.graph.datasets import load_dataset
from repro.runtime import DistributedRuntime
from repro.telemetry import Telemetry
from repro.utils.atomic import atomic_write_json

#: Graph sizes compared; the gate applies to the largest.
USER_COUNTS = (128, 256)
BACKEND = "matrix"
TIMING_REPS = 3
#: Required distributed/in-process speedup at two server processes — only
#: enforced when the host can actually run the servers concurrently.
SPEEDUP_TARGET = 1.3
#: The gate applies from this many CPUs upward.
MIN_GATED_CPUS = 2


def _load_average() -> float:
    try:
        return os.getloadavg()[0]
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX hosts
        return -1.0


def _config(distributed: bool) -> CargoConfig:
    return CargoConfig(
        epsilon=2.0, seed=7, counting_backend=BACKEND, distributed=distributed
    )


def run_distributed_runtime(user_counts=USER_COUNTS, reps: int = TIMING_REPS):
    """One row per graph size: in-process vs distributed best-of-*reps*."""
    host_cpus = os.cpu_count() or 1
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)

        reference = Cargo(_config(False)).run(graph)
        in_process_best = float("inf")
        for _ in range(max(reps, 1)):
            started = time.perf_counter()
            Cargo(_config(False)).run(graph)
            in_process_best = min(in_process_best, time.perf_counter() - started)

        with DistributedRuntime(_config(True)) as runtime:
            warm = runtime.run(graph)  # warm-up: forks already standing, caches hot
            assert (
                warm.noisy_triangle_count == reference.noisy_triangle_count
            ), "distributed release diverged from the in-process engine"
            distributed_best = float("inf")
            for _ in range(max(reps, 1)):
                started = time.perf_counter()
                runtime.run(graph)
                distributed_best = min(
                    distributed_best, time.perf_counter() - started
                )

        # One extra instrumented run for the transport summary (frames,
        # payload/overhead bytes, per-process wall time), kept out of the
        # timed repetitions.
        telemetry = Telemetry()
        config = CargoConfig(
            epsilon=2.0,
            seed=7,
            counting_backend=BACKEND,
            distributed=True,
            telemetry=telemetry,
        )
        with DistributedRuntime(config) as runtime:
            instrumented = runtime.run(graph)
        transport = instrumented.telemetry["transport"]

        speedup = in_process_best / distributed_best if distributed_best else 0.0
        rows.append(
            {
                "backend": BACKEND,
                "num_users": num_users,
                "server_processes": 2,
                "in_process_seconds": in_process_best,
                "distributed_seconds": distributed_best,
                "speedup": speedup,
                "host_cpus": host_cpus,
                "load_average": _load_average(),
                "gated": host_cpus >= MIN_GATED_CPUS,
                "speedup_target": SPEEDUP_TARGET,
                "transport": transport,
            }
        )
    return rows


def write_json(rows, path=None) -> Path:
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_DISTRIBUTED_OUTPUT",
            str(
                Path(__file__).resolve().parent
                / "results"
                / "distributed_runtime.json"
            ),
        )
    output = Path(path)
    atomic_write_json(output, {"benchmark": "distributed_runtime", "rows": rows})
    return output


def gate(rows) -> int:
    """Apply the speedup gate; returns a process exit code."""
    failures = 0
    for row in rows:
        label = (
            f"{row['backend']}/n={row['num_users']}: "
            f"in-process {row['in_process_seconds']*1e3:8.2f} ms, "
            f"distributed {row['distributed_seconds']*1e3:8.2f} ms "
            f"({row['speedup']:.2f}x, {row['host_cpus']} cpu(s), "
            f"load {row['load_average']:.2f})"
        )
        if not row["gated"]:
            print(f"  info {label} — single-CPU host, speedup gate not applied")
            continue
        if row["num_users"] != max(r["num_users"] for r in rows):
            print(f"  info {label}")
            continue
        if row["speedup"] >= SPEEDUP_TARGET:
            print(f"  ok   {label} >= {SPEEDUP_TARGET}x")
        else:
            print(f"  FAIL {label} < {SPEEDUP_TARGET}x")
            failures += 1
    return 1 if failures else 0


def test_distributed_runtime(benchmark):
    """Bit-identical releases; the speedup gate holds on multi-core hosts."""
    rows = benchmark.pedantic(run_distributed_runtime, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    assert gate(rows) == 0


if __name__ == "__main__":
    output_rows = run_distributed_runtime()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
    sys.exit(gate(output_rows))
