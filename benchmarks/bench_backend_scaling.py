"""Scaling micro-benchmark — every registered built-in counting backend.

Sweeps the user count ``n`` and records, per backend, the secure-count
runtime plus the dealer-side accounting that explains it:

* ``matrix`` vs ``blocked`` — the monolithic matrix backend pays ``3 n^2``
  ring elements for its one giant Beaver triple; the blocked backend never
  exceeds ``3 block_size^2`` regardless of ``n``, which is what lets it keep
  scaling after the monolithic triple stops fitting.
* ``batched`` (and, at small ``n``, ``faithful``) — the loop-free online
  phase of the per-triple protocol: vectorised candidate-triple blocks, one
  fused gather per opening round, and a buffered (pre-provisioned) offline
  phase.  These rows are the before/after evidence for the loop-free online
  phase optimisation and the input to the CI perf-smoke regression gate.

The rows are emitted as JSON (``benchmarks/results/backend_scaling.json`` by
default, override with ``REPRO_BENCH_OUTPUT``) so future changes can track
the runtime/memory trajectory across commits.  Set ``REPRO_BENCH_QUICK=1``
for the small CI smoke-test sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from memprof import measure_peak_bytes

from repro.core import Cargo, CargoConfig
from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.graph.datasets import load_dataset
from repro.graph.generators import sparse_random_graph
from repro.utils.atomic import atomic_write_json

#: Default n sweep and tile width; the quick mode keeps CI under a minute.
DEFAULT_USER_COUNTS = (64, 128, 256, 384)
QUICK_USER_COUNTS = (64, 128)
BLOCK_SIZE = 32
BATCH_SIZE = 4096
#: The faithful (batch_size=1) schedule runs one opening round per candidate
#: triple; past this n the cubic round count stops being a useful data point.
FAITHFUL_MAX_USERS = 64
#: Timing repetitions per cell (minimum is reported, standard for
#: microbenchmarks on shared hardware where noise is one-sided).
TIMING_REPS = 3
#: Sparse tier: full degree-local k-star releases at graph sizes the dense
#: n x n pipeline cannot touch (n=10^5 dense rows would be 80 GB).
SPARSE_NODE_COUNTS = (10_000, 100_000)
QUICK_SPARSE_NODE_COUNTS = (10_000,)
SPARSE_EDGE_FACTOR = 3
SPARSE_STAR_K = 3


def _backend_builders(num_users: int, block_size: int, workers: int = 0):
    """Name -> (dealer, counter) builders applicable at this n.

    *workers* > 0 builds every counter in tile-parallel engine mode
    (``REPRO_BENCH_WORKERS`` from the CLI); outputs and opening schedules
    are bit-identical either way, so the sweep stays comparable.
    """
    builders = {
        "matrix": lambda: _with_dealer(
            BeaverTripleDealer(seed=0),
            lambda dealer: MatrixTriangleCounter(dealer=dealer, workers=workers),
        ),
        "blocked": lambda: _with_dealer(
            BeaverTripleDealer(seed=0),
            lambda dealer: BlockedMatrixTriangleCounter(
                dealer=dealer, block_size=block_size, workers=workers
            ),
        ),
        "batched": lambda: _with_dealer(
            MultiplicationGroupDealer(seed=0),
            lambda dealer: FaithfulTriangleCounter(
                dealer=dealer, batch_size=BATCH_SIZE, workers=workers
            ),
        ),
    }
    if num_users <= FAITHFUL_MAX_USERS:
        builders["faithful"] = lambda: _with_dealer(
            MultiplicationGroupDealer(seed=0),
            lambda dealer: FaithfulTriangleCounter(
                dealer=dealer, batch_size=1, workers=workers
            ),
        )
    return builders


def _with_dealer(dealer, make_counter):
    if isinstance(make_counter, type):
        return dealer, make_counter(dealer=dealer)
    return dealer, make_counter(dealer)


def run_backend_scaling(
    user_counts=None,
    block_size: int = BLOCK_SIZE,
    reps: int = TIMING_REPS,
    workers: int = 0,
):
    """Return one row per (n, backend) with runtime and dealer stats."""
    if user_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        user_counts = QUICK_USER_COUNTS if quick else DEFAULT_USER_COUNTS
    if not workers:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=num_users)
        counts = {}
        for name, build in _backend_builders(num_users, block_size, workers).items():
            best = None
            for _ in range(max(reps, 1)):
                dealer, counter = build()
                start = time.perf_counter()
                result = counter.count_from_shares(share1, share2)
                seconds = time.perf_counter() - start
                best = seconds if best is None else min(best, seconds)
            counts[name] = result.reconstruct()
            # Peak working memory of one secure count, measured in its own
            # pass (tracemalloc slows the timed reps) and excluding the
            # pre-built shares, so the number is the backend's own footprint.
            peak_bytes = measure_peak_bytes(
                lambda build=build: build()[1].count_from_shares(share1, share2)
            )
            row = {
                "backend": name,
                "num_users": num_users,
                "seconds": best,
                "peak_bytes": peak_bytes,
                "opening_rounds": result.opening_rounds,
                "count": counts[name],
            }
            if isinstance(dealer, BeaverTripleDealer):
                row["block_size"] = block_size if name == "blocked" else num_users
                row["largest_triple_elements"] = dealer.largest_triple_elements
                row["total_triple_elements"] = dealer.total_triple_elements
            else:
                row["batch_size"] = 1 if name == "faithful" else BATCH_SIZE
                row["groups_issued"] = dealer.groups_issued
            rows.append(row)
        assert len(set(counts.values())) == 1, counts
    return rows


def run_sparse_scaling(
    node_counts=None,
    edge_factor: int = SPARSE_EDGE_FACTOR,
    star_k: int = SPARSE_STAR_K,
    reps: int = 1,
):
    """Sparse tier: one full degree-local k-star release per graph size.

    Each row runs the complete CARGO pipeline (Max → Project → Count →
    Perturb) with ``sparse="force"`` on an Erdős–Rényi-style sparse graph of
    ``edge_factor · n`` edges — end to end through the secret-shared degree
    vector, never materialising any ``n x n`` view.  ``seconds`` is the
    fastest of *reps* untraced runs; ``peak_bytes`` is a separate
    tracemalloc pass covering graph construction plus the release, so the
    row is direct evidence that a 10^5-node release stays ``O(n)`` (dense
    rows would be 80 GB).
    """
    if node_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        node_counts = QUICK_SPARSE_NODE_COUNTS if quick else SPARSE_NODE_COUNTS
    rows = []
    for num_nodes in node_counts:
        num_edges = edge_factor * num_nodes

        def release():
            graph = sparse_random_graph(num_nodes, num_edges, seed=num_nodes)
            config = CargoConfig(
                epsilon=2.0,
                statistic="kstars",
                star_k=star_k,
                sparse="force",
                seed=num_nodes,
            )
            return Cargo(config).run(graph)

        best = None
        for _ in range(max(reps, 1)):
            start = time.perf_counter()
            result = release()
            best = min(best or float("inf"), time.perf_counter() - start)
        peak_bytes = measure_peak_bytes(release)
        rows.append(
            {
                "tier": "sparse",
                "statistic": "kstars",
                "star_k": star_k,
                "num_nodes": num_nodes,
                "num_edges": num_edges,
                "seconds": best,
                "peak_bytes": peak_bytes,
                "noisy_count": result.noisy_triangle_count,
                "true_count": result.true_triangle_count,
            }
        )
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the benchmark rows for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "backend_scaling.json"),
        )
    output = Path(path)
    atomic_write_json(output, {"benchmark": "backend_scaling", "rows": rows})
    return output


def test_backend_scaling(benchmark):
    """Every backend agrees; blocked bounds the peak triple size."""
    rows = benchmark.pedantic(run_backend_scaling, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    for row in rows:
        print(
            "  backend={backend:<8} n={num_users:<5} time={seconds:8.4f}s "
            "rounds={opening_rounds}".format(**row)
        )
    largest_n = max(row["num_users"] for row in rows)
    matrix_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "matrix" and row["num_users"] == largest_n
    )
    blocked_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "blocked" and row["num_users"] == largest_n
    )
    # The whole point of the blocked backend: at the largest n the monolithic
    # matrix triple is at least 4x bigger than any single blocked allocation.
    assert matrix_peak >= 4 * blocked_peak
    assert blocked_peak <= 3 * BLOCK_SIZE * BLOCK_SIZE
    # The loop-free batched schedule opens C(n,3)/batch_size rounds, never
    # one round per triple.
    for row in rows:
        if row["backend"] == "batched":
            n = row["num_users"]
            total = n * (n - 1) * (n - 2) // 6
            assert row["opening_rounds"] == -(-total // BATCH_SIZE)


if __name__ == "__main__":
    output_rows = run_backend_scaling() + run_sparse_scaling()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
