"""Scaling micro-benchmark — every registered built-in counting backend.

Sweeps the user count ``n`` and records, per backend, the secure-count
runtime plus the dealer-side accounting that explains it:

* ``matrix`` vs ``blocked`` — the monolithic matrix backend pays ``3 n^2``
  ring elements for its one giant Beaver triple; the blocked backend never
  exceeds ``3 block_size^2`` regardless of ``n``, which is what lets it keep
  scaling after the monolithic triple stops fitting.
* ``batched`` (and, at small ``n``, ``faithful``) — the loop-free online
  phase of the per-triple protocol: vectorised candidate-triple blocks, one
  fused gather per opening round, and a buffered (pre-provisioned) offline
  phase.  These rows are the before/after evidence for the loop-free online
  phase optimisation and the input to the CI perf-smoke regression gate.

The rows are emitted as JSON (``benchmarks/results/backend_scaling.json`` by
default, override with ``REPRO_BENCH_OUTPUT``) so future changes can track
the runtime/memory trajectory across commits.  Set ``REPRO_BENCH_QUICK=1``
for the small CI smoke-test sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.graph.datasets import load_dataset

#: Default n sweep and tile width; the quick mode keeps CI under a minute.
DEFAULT_USER_COUNTS = (64, 128, 256, 384)
QUICK_USER_COUNTS = (64, 128)
BLOCK_SIZE = 32
BATCH_SIZE = 4096
#: The faithful (batch_size=1) schedule runs one opening round per candidate
#: triple; past this n the cubic round count stops being a useful data point.
FAITHFUL_MAX_USERS = 64
#: Timing repetitions per cell (minimum is reported, standard for
#: microbenchmarks on shared hardware where noise is one-sided).
TIMING_REPS = 3


def _backend_builders(num_users: int, block_size: int, workers: int = 0):
    """Name -> (dealer, counter) builders applicable at this n.

    *workers* > 0 builds every counter in tile-parallel engine mode
    (``REPRO_BENCH_WORKERS`` from the CLI); outputs and opening schedules
    are bit-identical either way, so the sweep stays comparable.
    """
    builders = {
        "matrix": lambda: _with_dealer(
            BeaverTripleDealer(seed=0),
            lambda dealer: MatrixTriangleCounter(dealer=dealer, workers=workers),
        ),
        "blocked": lambda: _with_dealer(
            BeaverTripleDealer(seed=0),
            lambda dealer: BlockedMatrixTriangleCounter(
                dealer=dealer, block_size=block_size, workers=workers
            ),
        ),
        "batched": lambda: _with_dealer(
            MultiplicationGroupDealer(seed=0),
            lambda dealer: FaithfulTriangleCounter(
                dealer=dealer, batch_size=BATCH_SIZE, workers=workers
            ),
        ),
    }
    if num_users <= FAITHFUL_MAX_USERS:
        builders["faithful"] = lambda: _with_dealer(
            MultiplicationGroupDealer(seed=0),
            lambda dealer: FaithfulTriangleCounter(
                dealer=dealer, batch_size=1, workers=workers
            ),
        )
    return builders


def _with_dealer(dealer, make_counter):
    if isinstance(make_counter, type):
        return dealer, make_counter(dealer=dealer)
    return dealer, make_counter(dealer)


def run_backend_scaling(
    user_counts=None,
    block_size: int = BLOCK_SIZE,
    reps: int = TIMING_REPS,
    workers: int = 0,
):
    """Return one row per (n, backend) with runtime and dealer stats."""
    if user_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        user_counts = QUICK_USER_COUNTS if quick else DEFAULT_USER_COUNTS
    if not workers:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=num_users)
        counts = {}
        for name, build in _backend_builders(num_users, block_size, workers).items():
            best = None
            for _ in range(max(reps, 1)):
                dealer, counter = build()
                start = time.perf_counter()
                result = counter.count_from_shares(share1, share2)
                seconds = time.perf_counter() - start
                best = seconds if best is None else min(best, seconds)
            counts[name] = result.reconstruct()
            row = {
                "backend": name,
                "num_users": num_users,
                "seconds": best,
                "opening_rounds": result.opening_rounds,
                "count": counts[name],
            }
            if isinstance(dealer, BeaverTripleDealer):
                row["block_size"] = block_size if name == "blocked" else num_users
                row["largest_triple_elements"] = dealer.largest_triple_elements
                row["total_triple_elements"] = dealer.total_triple_elements
            else:
                row["batch_size"] = 1 if name == "faithful" else BATCH_SIZE
                row["groups_issued"] = dealer.groups_issued
            rows.append(row)
        assert len(set(counts.values())) == 1, counts
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the benchmark rows for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "backend_scaling.json"),
        )
    output = Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps({"benchmark": "backend_scaling", "rows": rows}, indent=2))
    return output


def test_backend_scaling(benchmark):
    """Every backend agrees; blocked bounds the peak triple size."""
    rows = benchmark.pedantic(run_backend_scaling, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    for row in rows:
        print(
            "  backend={backend:<8} n={num_users:<5} time={seconds:8.4f}s "
            "rounds={opening_rounds}".format(**row)
        )
    largest_n = max(row["num_users"] for row in rows)
    matrix_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "matrix" and row["num_users"] == largest_n
    )
    blocked_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "blocked" and row["num_users"] == largest_n
    )
    # The whole point of the blocked backend: at the largest n the monolithic
    # matrix triple is at least 4x bigger than any single blocked allocation.
    assert matrix_peak >= 4 * blocked_peak
    assert blocked_peak <= 3 * BLOCK_SIZE * BLOCK_SIZE
    # The loop-free batched schedule opens C(n,3)/batch_size rounds, never
    # one round per triple.
    for row in rows:
        if row["backend"] == "batched":
            n = row["num_users"]
            total = n * (n - 1) * (n - 2) // 6
            assert row["opening_rounds"] == -(-total // BATCH_SIZE)


if __name__ == "__main__":
    output_rows = run_backend_scaling()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
