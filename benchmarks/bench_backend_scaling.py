"""Scaling micro-benchmark — monolithic ``matrix`` vs tiled ``blocked`` backend.

Sweeps the user count ``n`` and records, per backend, the secure-count
runtime and the dealer's peak *single-triple* allocation (per-party ring
elements of the largest Beaver triple issued).  The monolithic matrix backend
pays ``3 n^2`` elements for its one giant triple; the blocked backend never
exceeds ``3 block_size^2`` regardless of ``n``, which is what lets it keep
scaling after the monolithic triple stops fitting.

The rows are emitted as JSON (``benchmarks/results/backend_scaling.json`` by
default, override with ``REPRO_BENCH_OUTPUT``) so future changes can track
the runtime/memory trajectory across commits.  Set ``REPRO_BENCH_QUICK=1``
for the small CI smoke-test sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.backends import BlockedMatrixTriangleCounter, MatrixTriangleCounter
from repro.crypto.beaver import BeaverTripleDealer
from repro.graph.datasets import load_dataset

#: Default n sweep and tile width; the quick mode keeps CI under a minute.
DEFAULT_USER_COUNTS = (128, 256, 384)
QUICK_USER_COUNTS = (64, 128)
BLOCK_SIZE = 32


def run_backend_scaling(user_counts=None, block_size: int = BLOCK_SIZE):
    """Return one row per (n, backend) with runtime and peak-triple stats."""
    if user_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        user_counts = QUICK_USER_COUNTS if quick else DEFAULT_USER_COUNTS
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)
        shares = graph.adjacency_matrix()
        backends = {
            "matrix": lambda dealer: MatrixTriangleCounter(dealer=dealer),
            "blocked": lambda dealer: BlockedMatrixTriangleCounter(
                dealer=dealer, block_size=block_size
            ),
        }
        counts = {}
        for name, build in backends.items():
            dealer = BeaverTripleDealer(seed=0)
            counter = build(dealer)
            start = time.perf_counter()
            result = counter.count(shares, rng=num_users)
            seconds = time.perf_counter() - start
            counts[name] = result.reconstruct()
            rows.append(
                {
                    "backend": name,
                    "num_users": num_users,
                    "block_size": block_size if name == "blocked" else num_users,
                    "seconds": seconds,
                    "opening_rounds": result.opening_rounds,
                    "largest_triple_elements": dealer.largest_triple_elements,
                    "total_triple_elements": dealer.total_triple_elements,
                    "count": counts[name],
                }
            )
        assert counts["matrix"] == counts["blocked"], counts
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the benchmark rows for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "backend_scaling.json"),
        )
    output = Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(json.dumps({"benchmark": "backend_scaling", "rows": rows}, indent=2))
    return output


def test_backend_scaling(benchmark):
    """Blocked matches matrix exactly while bounding the peak triple size."""
    rows = benchmark.pedantic(run_backend_scaling, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    for row in rows:
        print(
            "  backend={backend:<8} n={num_users:<5} time={seconds:8.4f}s "
            "rounds={opening_rounds:<6} peak_triple={largest_triple_elements}".format(**row)
        )
    largest_n = max(row["num_users"] for row in rows)
    matrix_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "matrix" and row["num_users"] == largest_n
    )
    blocked_peak = next(
        row["largest_triple_elements"]
        for row in rows
        if row["backend"] == "blocked" and row["num_users"] == largest_n
    )
    # The whole point of the blocked backend: at the largest n the monolithic
    # matrix triple is at least 4x bigger than any single blocked allocation.
    assert matrix_peak >= 4 * blocked_peak
    assert blocked_peak <= 3 * BLOCK_SIZE * BLOCK_SIZE


if __name__ == "__main__":
    output_rows = run_backend_scaling()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
