"""CI runtime-smoke gate: the process-separated runtime on a toy graph.

Three checks, each of which must hold for the distributed runtime to be
trustworthy as a drop-in engine:

* **Bit-identity** — for every counting backend, a release computed by the
  four-process runtime (driver + two servers + dealer over socket links)
  equals the in-process engine's release exactly: noisy count, noisy max
  degree, and the full per-phase communication ledger.
* **Ledger/wire reconciliation** — the driver's post-run invariant (every
  logical byte the :class:`~repro.crypto.protocol.CommunicationLedger`
  records is accounted for by payload bytes physically written to a socket)
  held, and the reported transport section is internally consistent
  (``wire = payload + overhead``, all process timings present).
* **Crash + resume** — an injected mid-round server crash surfaces as a
  typed :class:`~repro.exceptions.RuntimeProcessError`, leaves a usable
  checkpoint behind, and a fresh runtime resumes to a release bit-identical
  to the uninterrupted reference.

Results land in ``benchmarks/results/runtime_smoke.json`` (the CI
artifact); any failed check exits 1.

Usage::

    PYTHONPATH=src python benchmarks/runtime_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.core import Cargo, CargoConfig
from repro.exceptions import RuntimeProcessError
from repro.graph.datasets import load_dataset
from repro.resilience import FaultKind, FaultPlan, FaultSpec, ResilienceConfig
from repro.runtime import run_distributed
from repro.telemetry import Telemetry
from repro.utils.atomic import atomic_write_json

OUTPUT_PATH = Path(__file__).resolve().parent / "results" / "runtime_smoke.json"
BACKENDS = ("faithful", "batched", "matrix", "blocked")
NUM_NODES = 24


def _config(backend: str, distributed: bool, **overrides) -> CargoConfig:
    kwargs = dict(
        epsilon=2.0,
        seed=13,
        counting_backend=backend,
        batch_size=64,
        block_size=8,
        authenticate=True,
        track_communication=True,
        distributed=distributed,
    )
    kwargs.update(overrides)
    return CargoConfig(**kwargs)


def check_bit_identity(graph, rows: list, failures: list) -> None:
    for backend in BACKENDS:
        reference = Cargo(_config(backend, False)).run(graph)
        result = run_distributed(graph, _config(backend, True))
        identical = (
            result.noisy_triangle_count == reference.noisy_triangle_count
            and result.noisy_max_degree == reference.noisy_max_degree
            and result.communication_phases == reference.communication_phases
        )
        status = "ok" if identical else "FAIL"
        print(
            f"  {status:4s} bit-identity/{backend}: distributed "
            f"{result.noisy_triangle_count} vs in-process "
            f"{reference.noisy_triangle_count}"
        )
        rows.append(
            {
                "check": "bit_identity",
                "backend": backend,
                "passed": identical,
                "noisy_count": result.noisy_triangle_count,
            }
        )
        if not identical:
            failures.append(f"bit_identity/{backend}")


def check_reconciliation(graph, rows: list, failures: list) -> None:
    telemetry = Telemetry()
    # The driver raises RuntimeProcessError if any ledgered phase's logical
    # bytes fail to reconcile against the wire, so completing at all is the
    # core assertion; the transport section is then checked for coherence.
    result = run_distributed(graph, _config("matrix", True, telemetry=telemetry))
    transport = result.telemetry["transport"]
    coherent = (
        transport["frames"] > 0
        and transport["overhead_bytes"] > 0
        and transport["wire_bytes"]
        == transport["payload_bytes"] + transport["overhead_bytes"]
        and transport["unledgered_payload_bytes"] >= 0
        and all(
            transport["processes"].get(name, -1.0) >= 0.0
            for name in ("driver", "server1", "server2", "dealer")
        )
    )
    status = "ok" if coherent else "FAIL"
    print(
        f"  {status:4s} reconciliation: {transport['frames']} frames, "
        f"{transport['payload_bytes']} payload B, "
        f"{transport['overhead_bytes']} framing B"
    )
    rows.append(
        {"check": "reconciliation", "passed": coherent, "transport": transport}
    )
    if not coherent:
        failures.append("reconciliation")


def check_crash_resume(graph, rows: list, failures: list) -> None:
    with tempfile.TemporaryDirectory(prefix="runtime_smoke_") as workdir:
        checkpoint = os.path.join(workdir, "distributed.ckpt")
        resilience = ResilienceConfig(checkpoint_path=checkpoint, resume=True)
        config = _config("matrix", True, resilience=resilience)
        reference = Cargo(_config("matrix", False)).run(graph)

        plan = FaultPlan(
            [FaultSpec("runtime.round", FaultKind.CRASH, at=2)]
        ).to_json()
        crashed_as_typed = False
        try:
            run_distributed(graph, config, fault_plan=plan, fault_target="server1")
        except RuntimeProcessError:
            crashed_as_typed = True
        checkpoint_saved = os.path.exists(checkpoint)

        resumed_identical = False
        if crashed_as_typed and checkpoint_saved:
            resumed = run_distributed(graph, config)
            resumed_identical = (
                resumed.noisy_triangle_count == reference.noisy_triangle_count
                and resumed.noisy_max_degree == reference.noisy_max_degree
            )
        passed = crashed_as_typed and checkpoint_saved and resumed_identical
        status = "ok" if passed else "FAIL"
        print(
            f"  {status:4s} crash+resume: typed={crashed_as_typed} "
            f"checkpoint={checkpoint_saved} identical={resumed_identical}"
        )
        rows.append(
            {
                "check": "crash_resume",
                "passed": passed,
                "typed_error": crashed_as_typed,
                "checkpoint_saved": checkpoint_saved,
                "resumed_identical": resumed_identical,
            }
        )
        if not passed:
            failures.append("crash_resume")


def main() -> int:
    graph = load_dataset("facebook", num_nodes=NUM_NODES)
    rows: list = []
    failures: list = []
    check_bit_identity(graph, rows, failures)
    check_reconciliation(graph, rows, failures)
    check_crash_resume(graph, rows, failures)
    atomic_write_json(
        OUTPUT_PATH,
        {
            "benchmark": "runtime_smoke",
            "host_cpus": os.cpu_count(),
            "rows": rows,
        },
    )
    print(f"wrote {OUTPUT_PATH}")
    if failures:
        print(f"runtime-smoke FAILED: {', '.join(failures)}")
        return 1
    print("runtime-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
