"""Table III — noisy max degree vs smooth / residual sensitivity."""

from __future__ import annotations

from repro.experiments.tables import table3_sensitivity_comparison


def test_table3_sensitivity_comparison(benchmark, bench_num_nodes):
    """Regenerate Table III on the five collaboration graphs at epsilon = 1."""
    report = benchmark.pedantic(
        lambda: table3_sensitivity_comparison(epsilon=1.0, num_nodes=bench_num_nodes),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    assert len(report.rows) == 5
    # The qualitative claim: d'_max sits in the same ballpark as SS and RS.
    for row in report.rows:
        assert row["noisy_d_max"] > 0
        assert row["residual_sensitivity"] >= row["smooth_sensitivity"]
