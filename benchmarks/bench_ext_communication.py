"""Extension — communication overhead of CARGO as the user count grows."""

from __future__ import annotations

from repro.experiments.communication import communication_overhead


def test_ext_communication_overhead(benchmark):
    """Total bytes grow quadratically in n, driven by the adjacency-share upload."""
    report = benchmark.pedantic(
        lambda: communication_overhead(dataset="facebook", user_counts=(50, 100, 200)),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    by_n = {row["num_users"]: row for row in report.rows}
    # Quadratic growth: quadrupling is expected when n doubles; allow slack.
    assert by_n[200]["total_bytes"] > 3 * by_n[100]["total_bytes"]
    for row in report.rows:
        assert row["adjacency_share_bytes"] >= row["noise_share_bytes"]
