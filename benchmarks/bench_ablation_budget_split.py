"""Ablation — privacy budget split between Max (epsilon1) and Perturb (epsilon2).

The paper fixes epsilon1 = 0.1 * epsilon.  This ablation sweeps the fraction
and reports the end-to-end l2 loss: too little budget for `Max` inflates the
noisy maximum degree (larger perturbation scale), too much starves the count
perturbation itself.
"""

from __future__ import annotations

import numpy as np

from repro.core.cargo import Cargo
from repro.core.config import CargoConfig
from repro.graph.datasets import load_dataset


def run_budget_split_ablation(num_nodes: int = 130, epsilon: float = 2.0, trials: int = 3):
    """Return mean l2 loss per Max-budget fraction."""
    graph = load_dataset("wiki", num_nodes=num_nodes)
    results = {}
    for fraction in (0.05, 0.1, 0.3, 0.6):
        losses = [
            Cargo(
                CargoConfig(epsilon=epsilon, max_degree_fraction=fraction, seed=seed)
            ).run(graph).l2_loss
            for seed in range(trials)
        ]
        results[fraction] = float(np.mean(losses))
    return results


def test_ablation_budget_split(benchmark):
    """The paper's 0.1 split is competitive; starving Perturb is clearly worse."""
    results = benchmark.pedantic(run_budget_split_ablation, rounds=1, iterations=1)
    print()
    for fraction, loss in results.items():
        print(f"  epsilon1 fraction={fraction:<5} mean l2 loss = {loss:.3e}")
    # Spending most of the budget on the degree estimate starves the count
    # perturbation, so it must not beat the paper's default split.
    assert results[0.6] >= results[0.1] * 0.5
