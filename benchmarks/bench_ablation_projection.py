"""Ablation — projection strategy: similarity vs random vs none.

DESIGN.md calls out the projection rule as a key design choice.  This
ablation runs the full CARGO pipeline three ways on the same graph:

* similarity-based `Project` (the paper's choice),
* random edge deletion (the LDP baseline's projection), and
* no projection at all (sensitivity stays at n - 2).

The expected ordering of the end-to-end l2 loss is
``similarity <= random << no-projection`` once the degree bound actually
truncates edges (small theta relative to d_max).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.random_projection import RandomProjection
from repro.core.counting import CountResult
from repro.core.fast_counting import MatrixTriangleCounter
from repro.core.perturbation import DistributedPerturbation
from repro.core.projection import SimilarityProjection, projected_triangle_count
from repro.dp.sensitivity import triangle_sensitivity_unbounded
from repro.graph.datasets import load_dataset
from repro.graph.triangles import count_triangles
from repro.metrics.error import l2_loss


def _pipeline_loss(graph, rows, sensitivity: float, epsilon2: float, seed: int) -> float:
    """Secure count on *rows*, perturb with *sensitivity*, return l2 loss."""
    count = MatrixTriangleCounter().count(rows, rng=seed)
    perturbation = DistributedPerturbation(
        epsilon2=epsilon2, sensitivity=max(sensitivity, 1.0), num_users=graph.num_nodes
    )
    noisy = perturbation.run(count, rng=seed).noisy_count
    return l2_loss(count_triangles(graph), noisy)


def run_projection_ablation(num_nodes: int = 150, theta: int = 25, epsilon2: float = 1.8, trials: int = 3):
    """Return mean l2 loss for the three projection strategies."""
    graph = load_dataset("facebook", num_nodes=num_nodes)
    losses = {"similarity": [], "random": [], "none": []}
    for seed in range(trials):
        similarity_rows = SimilarityProjection(theta).project_graph(graph).projected_rows
        losses["similarity"].append(_pipeline_loss(graph, similarity_rows, theta, epsilon2, seed))
        random_rows = RandomProjection(theta).project_graph(graph, rng=seed).projected_rows
        losses["random"].append(_pipeline_loss(graph, random_rows, theta, epsilon2, seed))
        losses["none"].append(
            _pipeline_loss(
                graph,
                graph.adjacency_matrix(),
                triangle_sensitivity_unbounded(graph.num_nodes),
                epsilon2,
                seed,
            )
        )
    return {name: float(np.mean(values)) for name, values in losses.items()}


def test_ablation_projection_strategy(benchmark):
    """Similarity projection dominates random projection end to end."""
    results = benchmark.pedantic(run_projection_ablation, rounds=1, iterations=1)
    print()
    for name, loss in results.items():
        print(f"  projection={name:<11} mean l2 loss = {loss:.3e}")
    assert results["similarity"] <= results["random"]
