"""Table II — theoretical comparison of the three models (analytic)."""

from __future__ import annotations

from repro.experiments.tables import table2_theoretical_summary


def test_table2_theoretical_summary(benchmark):
    """Regenerate Table II (instantaneous — the table is analytic)."""
    report = benchmark(table2_theoretical_summary)
    print()
    print(report.to_text())
    assert len(report.rows) == 4
