"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation called out in DESIGN.md) at a scaled-down size, times it with
pytest-benchmark, and prints the resulting rows so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the artefacts verbatim.
"""

from __future__ import annotations

import pytest

#: Graph size used by the benchmark-scale experiments.  Small enough that the
#: whole suite runs in a few minutes; raise it for a paper-scale run.
BENCH_NUM_NODES = 150

#: Number of repeated protocol trials per benchmark cell.
BENCH_TRIALS = 2


@pytest.fixture(scope="session")
def bench_num_nodes() -> int:
    """Graph size shared by all benchmark experiments."""
    return BENCH_NUM_NODES


@pytest.fixture(scope="session")
def bench_trials() -> int:
    """Trial count shared by all benchmark experiments."""
    return BENCH_TRIALS
