"""CI telemetry-smoke gate: traced releases across every backend × statistic.

For each counting backend (at a size where its strategy is exercised — the
per-triple ``faithful`` path stays tiny, the matrix/blocked paths get
several tiles) and each registered statistic, the gate runs one release
twice: once untraced and once under a fresh :class:`~repro.telemetry.
Telemetry` session.  Three properties must hold per cell:

1. **Transcript bit-identity** — noisy/true/projected counts, the
   communication ledger (per channel and per phase), and both servers'
   recorded views are byte-for-byte identical with telemetry on or off.
   Observability must never perturb the protocol.
2. **Manifest validity** — the traced run's exported JSON manifest passes
   :func:`~repro.telemetry.validate_manifest` (schema version, release
   record shape, span-tree shape).
3. **Exact ledger reconciliation** — the manifest's per-phase byte and
   message totals equal the ``comm_bytes`` / ``comm_messages`` metric
   counters exactly, both directions
   (:func:`~repro.telemetry.verify_ledger_reconciliation`).

Artifacts (one manifest per backend plus a combined Prometheus dump and a
summary JSON) land under ``benchmarks/results/telemetry/`` and are uploaded
by the ``telemetry-smoke`` CI job.

Usage::

    PYTHONPATH=src python benchmarks/telemetry_smoke.py    # exit 1 on violation
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

from repro.core import Cargo, CargoConfig
from repro.graph.datasets import load_dataset
from repro.telemetry import (
    Telemetry,
    to_prometheus_text,
    validate_manifest,
    verify_ledger_reconciliation,
    write_trace,
)
from repro.utils.atomic import atomic_write_json, atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent / "results" / "telemetry"

#: Backend → graph size.  The faithful path is O(C(n,3)) openings, so it
#: stays small; the tiled paths need several blocks to exercise grouping.
BACKEND_SIZES = {"faithful": 36, "batched": 48, "matrix": 96, "blocked": 96}
STATISTICS = ("triangles", "kstars", "wedges", "4cycles")
BLOCK_SIZE = 16
BATCH_SIZE = 64


def _freeze(value):
    if isinstance(value, (tuple, list)):
        return tuple(_freeze(part) for part in value)
    array = np.atleast_1d(np.asarray(value, dtype=np.uint64))
    return (array.shape, array.tobytes())


def _view_streams(views):
    """Both servers' recorded observations as comparable byte tuples."""
    streams = []
    for server_index in (1, 2):
        for entry in views.view(server_index).entries:
            streams.append((entry.server_index, entry.label, _freeze(entry.value)))
    return streams


def _run_release(backend: str, statistic: str, telemetry):
    graph = load_dataset("facebook", num_nodes=BACKEND_SIZES[backend])
    config = CargoConfig(
        epsilon=2.0,
        seed=7,
        statistic=statistic,
        counting_backend=backend,
        batch_size=BATCH_SIZE,
        block_size=BLOCK_SIZE,
        record_views=True,
        track_communication=True,
        telemetry=telemetry,
    )
    cargo = Cargo(config)
    result = cargo.run(graph)
    transcript = (
        result.noisy_triangle_count,
        result.true_triangle_count,
        result.projected_triangle_count,
        tuple(sorted((k, tuple(sorted(v.items()))) for k, v in result.communication.items())),
        tuple(sorted((k, tuple(sorted(v.items()))) for k, v in result.communication_phases.items())),
        _view_streams(cargo.views),
    )
    return result, transcript


def main() -> int:
    failures: list = []
    summary_rows = []
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    for backend in BACKEND_SIZES:
        telemetry = Telemetry()
        for statistic in STATISTICS:
            _, untraced = _run_release(backend, statistic, None)
            result, traced = _run_release(backend, statistic, telemetry)
            cell = f"{backend}/{statistic}"
            identical = traced == untraced
            if not identical:
                failures.append(f"transcript/{cell}")
            print(f"  {'ok' if identical else 'FAIL':4s} transcript {cell}")
            summary_rows.append(
                {
                    "backend": backend,
                    "statistic": statistic,
                    "num_nodes": BACKEND_SIZES[backend],
                    "transcript_identical": identical,
                    "noisy_count": result.noisy_triangle_count,
                    "phases": sorted(result.communication_phases),
                }
            )
        manifest = write_trace(
            telemetry,
            RESULTS_DIR / f"trace_{backend}.json",
            benchmark="telemetry_smoke",
            backend=backend,
        )
        problems = validate_manifest(manifest)
        mismatches = verify_ledger_reconciliation(manifest)
        for label, issues in (("manifest", problems), ("reconcile", mismatches)):
            status = "ok" if not issues else "FAIL"
            print(f"  {status:4s} {label} {backend}: {issues or 'clean'}")
            if issues:
                failures.append(f"{label}/{backend}")
        atomic_write_text(
            RESULTS_DIR / f"metrics_{backend}.prom",
            to_prometheus_text(telemetry.metrics),
        )
    atomic_write_json(
        RESULTS_DIR / "telemetry_smoke.json",
        {"benchmark": "telemetry_smoke", "rows": summary_rows},
    )
    print(f"wrote {RESULTS_DIR}")
    if failures:
        print(f"telemetry-smoke FAILED: {', '.join(failures)}")
        return 1
    print("telemetry-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
