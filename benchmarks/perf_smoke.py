"""CI perf-smoke gate: quick benchmarks vs the committed baseline.

Runs the small-n backend-scaling sweep, the crypto-primitive timings, the
n=256 blocked/matrix rows of the tile-parallel engine (serial plus a
``--workers N`` parallel variant, default 2), and the n=10^4 sparse-tier
k-star release, writes the fresh rows to
``benchmarks/results/perf_smoke.json`` (the CI artifact), and compares each
timed row against ``BENCH_baseline.json`` at the repository root.  Two
conditions fail the gate, each with the ``TOLERANCE`` factor (3x):

* the **median** current/baseline ratio across all rows exceeds it — an
  across-the-board slowdown that no host difference explains, or
* any single row exceeds it **after dividing out the median ratio** — a
  localised algorithmic regression (e.g. a backend silently falling back to
  a per-element loop is 10-100x), measured machine-independently because the
  median calibrates away how much slower/faster the CI host is than the
  machine the baseline was committed from.

The factor is deliberately loose; the gate exists to catch algorithmic
regressions, not scheduler noise.

Every report and baseline records the host's CPU count and load average.
On a single-CPU host the multi-worker engine rows time contention rather
than the engine, so a blown bound there is reported as a warning instead
of failing the gate.

Every row also records its tracemalloc ``peak_bytes`` (measured by the
bench modules in a separate pass, never inside a timed repetition), gated
against ``memory_rows`` with the tighter ``MEMORY_TOLERANCE`` (2x) and no
host calibration — allocation sizes are machine-independent, so a blown
ceiling is an algorithmic change (e.g. a backend silently going dense), not
noise.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py               # gate (exit 1 on regression)
    PYTHONPATH=src python benchmarks/perf_smoke.py --workers 2   # explicit parallel-row workers
    PYTHONPATH=src python benchmarks/perf_smoke.py --rebase      # rewrite the baseline
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from bench_backend_scaling import (
    QUICK_SPARSE_NODE_COUNTS,
    QUICK_USER_COUNTS,
    run_backend_scaling,
    run_sparse_scaling,
)
from bench_crypto_primitives import run_crypto_primitives
from bench_parallel_engine import run_parallel_engine
from repro.utils.atomic import atomic_write_json

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_baseline.json"
OUTPUT_PATH = Path(__file__).resolve().parent / "results" / "perf_smoke.json"
TOLERANCE = 3.0
#: Peak-memory gate factor: allocation sizes do not vary with host speed, so
#: the bound is tighter than the timing gate and applied without calibration.
MEMORY_TOLERANCE = 2.0
#: n for the engine rows; serial (workers=1) plus one parallel variant.
ENGINE_USERS = 256
DEFAULT_ENGINE_WORKERS = 2
#: Disabled-telemetry overhead gate: an explicitly disabled Telemetry
#: session must cost at most this factor over no session at all (or at most
#: the absolute slack, whichever is looser — tiny runs are timer-noise
#: bound).  Interleaved in-process A/B with min-of-reps, so the check is
#: machine-independent and needs no committed baseline.
TELEMETRY_OVERHEAD_LIMIT = 1.02
TELEMETRY_OVERHEAD_ABS_SECONDS = 0.002
TELEMETRY_USERS = 128
TELEMETRY_REPS = 7
#: Disabled-resilience overhead gate, same A/B discipline: carrying the
#: all-off ResilienceConfig (every fault_point and retry hook on its fast
#: path) must cost at most this factor over the default ``resilience=None``.
RESILIENCE_OVERHEAD_LIMIT = 1.02
RESILIENCE_OVERHEAD_ABS_SECONDS = 0.002
#: Disabled-authentication overhead gate, same A/B discipline: carrying an
#: inert ``OpeningAuthenticator.disabled()`` (every opening routed through
#: ``exchange`` hitting its plain-reconstruction fast path) must cost at
#: most this factor over the default ``authenticator=None``.
AUTH_OVERHEAD_LIMIT = 1.02
AUTH_OVERHEAD_ABS_SECONDS = 0.002


def host_block() -> dict:
    """CPU count and load average, recorded in every report and baseline.

    Parallel rows (``workers > 1``) only mean something on a host that can
    actually run the workers concurrently; recording the context lets a
    reader — and the gate itself — interpret them correctly.
    """
    try:
        load_average = os.getloadavg()[0]
    except (AttributeError, OSError):  # pragma: no cover - non-POSIX hosts
        load_average = -1.0
    return {"host_cpus": os.cpu_count() or 1, "load_average": load_average}


def _is_parallel_row(key: str) -> bool:
    """Whether *key* times a multi-worker run (meaningless on one CPU)."""
    _, _, workers = key.rpartition("/workers=")
    return workers.isdigit() and int(workers) > 1


def check_telemetry_overhead(failures: list) -> dict:
    """A/B the matrix-backend release with and without a disabled session.

    Both arms run the identical protocol (``telemetry=None`` resolves to the
    same no-op bundle as ``Telemetry.disabled()``); the gate pins the cost of
    carrying the instrumentation — every span call hitting the disabled
    fast path — to under ``TELEMETRY_OVERHEAD_LIMIT``.  Arms are interleaved
    and summarised by their minimum, which discards scheduler noise.
    """
    from repro.core import Cargo, CargoConfig
    from repro.graph.datasets import load_dataset
    from repro.telemetry import Telemetry

    graph = load_dataset("facebook", num_nodes=TELEMETRY_USERS)

    def one_run(telemetry) -> float:
        config = CargoConfig(
            epsilon=2.0, seed=11, counting_backend="matrix", telemetry=telemetry
        )
        started = time.perf_counter()
        Cargo(config).run(graph)
        return time.perf_counter() - started

    one_run(None)  # warm-up: imports, dataset and ground-truth caches
    without_session = []
    with_disabled = []
    for _ in range(TELEMETRY_REPS):
        without_session.append(one_run(None))
        with_disabled.append(one_run(Telemetry.disabled()))
    best_without = min(without_session)
    best_disabled = min(with_disabled)
    ratio = best_disabled / best_without if best_without > 0 else float("inf")
    delta = best_disabled - best_without
    passed = ratio <= TELEMETRY_OVERHEAD_LIMIT or delta <= TELEMETRY_OVERHEAD_ABS_SECONDS
    status = "ok" if passed else "FAIL"
    print(
        f"  {status:4s} telemetry_overhead/matrix/n={TELEMETRY_USERS}: "
        f"{best_disabled*1e3:.2f} ms disabled-session vs {best_without*1e3:.2f} ms bare "
        f"({ratio:.3f}x, limit {TELEMETRY_OVERHEAD_LIMIT}x or "
        f"{TELEMETRY_OVERHEAD_ABS_SECONDS*1e3:.0f} ms abs)"
    )
    if not passed:
        failures.append("telemetry_overhead")
    return {
        "name": "telemetry_overhead",
        "backend": "matrix",
        "num_users": TELEMETRY_USERS,
        "reps": TELEMETRY_REPS,
        "seconds_without_session": best_without,
        "seconds_disabled_session": best_disabled,
        "ratio": ratio,
        "limit": TELEMETRY_OVERHEAD_LIMIT,
        "abs_slack_seconds": TELEMETRY_OVERHEAD_ABS_SECONDS,
    }


def check_resilience_overhead(failures: list) -> dict:
    """A/B the blocked-backend release with and without a no-op resilience.

    The blocked backend crosses the densest set of fault sites per release
    (``dealer.provision`` per tile group, ``pool.task`` per task), so it
    upper-bounds what the disabled machinery — ``fault_point`` reading one
    module global, ``resolve_resilience`` returning the shared no-op —
    costs a run that never opted in.
    """
    from repro.core import Cargo, CargoConfig
    from repro.graph.datasets import load_dataset
    from repro.resilience import NULL_RESILIENCE

    graph = load_dataset("facebook", num_nodes=TELEMETRY_USERS)

    def one_run(resilience) -> float:
        config = CargoConfig(
            epsilon=2.0,
            seed=11,
            counting_backend="blocked",
            block_size=32,
            resilience=resilience,
        )
        started = time.perf_counter()
        Cargo(config).run(graph)
        return time.perf_counter() - started

    one_run(None)  # warm-up: imports, dataset and ground-truth caches
    without_config = []
    with_null = []
    for _ in range(TELEMETRY_REPS):
        without_config.append(one_run(None))
        with_null.append(one_run(NULL_RESILIENCE))
    best_without = min(without_config)
    best_null = min(with_null)
    ratio = best_null / best_without if best_without > 0 else float("inf")
    delta = best_null - best_without
    passed = (
        ratio <= RESILIENCE_OVERHEAD_LIMIT
        or delta <= RESILIENCE_OVERHEAD_ABS_SECONDS
    )
    status = "ok" if passed else "FAIL"
    print(
        f"  {status:4s} resilience_overhead/blocked/n={TELEMETRY_USERS}: "
        f"{best_null*1e3:.2f} ms all-off config vs {best_without*1e3:.2f} ms bare "
        f"({ratio:.3f}x, limit {RESILIENCE_OVERHEAD_LIMIT}x or "
        f"{RESILIENCE_OVERHEAD_ABS_SECONDS*1e3:.0f} ms abs)"
    )
    if not passed:
        failures.append("resilience_overhead")
    return {
        "name": "resilience_overhead",
        "backend": "blocked",
        "num_users": TELEMETRY_USERS,
        "reps": TELEMETRY_REPS,
        "seconds_without_config": best_without,
        "seconds_null_config": best_null,
        "ratio": ratio,
        "limit": RESILIENCE_OVERHEAD_LIMIT,
        "abs_slack_seconds": RESILIENCE_OVERHEAD_ABS_SECONDS,
    }


def check_authentication_overhead(failures: list) -> dict:
    """A/B the matrix-backend release with and without an inert authenticator.

    ``authenticate=False`` must stay free: the only cost an unauthenticated
    run may pay for the MAC layer's existence is the ``authenticator=None``
    argument plumbing plus — in this deliberately pessimistic arm — a
    disabled authenticator whose ``exchange`` falls straight through to
    plain reconstruction.  Same interleaved min-of-reps discipline as the
    telemetry and resilience gates.
    """
    from repro.core import Cargo, CargoConfig
    from repro.crypto.mac import OpeningAuthenticator
    from repro.graph.datasets import load_dataset

    graph = load_dataset("facebook", num_nodes=TELEMETRY_USERS)

    def one_run(authenticator) -> float:
        config = CargoConfig(
            epsilon=2.0,
            seed=11,
            counting_backend="matrix",
            authenticator=authenticator,
        )
        started = time.perf_counter()
        Cargo(config).run(graph)
        return time.perf_counter() - started

    one_run(None)  # warm-up: imports, dataset and ground-truth caches
    without_auth = []
    with_disabled = []
    for _ in range(TELEMETRY_REPS):
        without_auth.append(one_run(None))
        with_disabled.append(one_run(OpeningAuthenticator.disabled()))
    best_without = min(without_auth)
    best_disabled = min(with_disabled)
    ratio = best_disabled / best_without if best_without > 0 else float("inf")
    delta = best_disabled - best_without
    passed = ratio <= AUTH_OVERHEAD_LIMIT or delta <= AUTH_OVERHEAD_ABS_SECONDS
    status = "ok" if passed else "FAIL"
    print(
        f"  {status:4s} auth_overhead/matrix/n={TELEMETRY_USERS}: "
        f"{best_disabled*1e3:.2f} ms disabled-auth vs {best_without*1e3:.2f} ms bare "
        f"({ratio:.3f}x, limit {AUTH_OVERHEAD_LIMIT}x or "
        f"{AUTH_OVERHEAD_ABS_SECONDS*1e3:.0f} ms abs)"
    )
    if not passed:
        failures.append("auth_overhead")
    return {
        "name": "auth_overhead",
        "backend": "matrix",
        "num_users": TELEMETRY_USERS,
        "reps": TELEMETRY_REPS,
        "seconds_without_auth": best_without,
        "seconds_disabled_auth": best_disabled,
        "ratio": ratio,
        "limit": AUTH_OVERHEAD_LIMIT,
        "abs_slack_seconds": AUTH_OVERHEAD_ABS_SECONDS,
    }


def _key(row: dict) -> str:
    if row.get("tier") == "sparse":
        return f"sparse_scaling/{row['statistic']}/n={row['num_nodes']}"
    if "workers" in row:
        return (
            f"parallel_engine/{row['backend']}/n={row['num_users']}"
            f"/workers={row['workers']}"
        )
    if "backend" in row:
        return f"backend_scaling/{row['backend']}/n={row['num_users']}"
    return f"crypto_primitives/{row['name']}"


def collect_rows(engine_workers: int = DEFAULT_ENGINE_WORKERS) -> dict:
    """Run the quick benchmarks and index the timed rows by comparison key.

    The gated engine rows always cover workers ∈ {1, DEFAULT}, matching the
    committed baseline keys; a different *engine_workers* adds an extra
    exploratory row (ignored by the gate, which only iterates baseline keys).
    """
    rows = {}
    for row in run_backend_scaling(user_counts=QUICK_USER_COUNTS):
        rows[_key(row)] = row
    for row in run_crypto_primitives():
        rows[_key(row)] = row
    worker_counts = tuple(sorted({1, DEFAULT_ENGINE_WORKERS, engine_workers}))
    for row in run_parallel_engine(
        user_counts=(ENGINE_USERS,), worker_counts=worker_counts
    ):
        if "workers" in row:  # the offline cold/warm row is not a gated timing
            rows[_key(row)] = row
    for row in run_sparse_scaling(node_counts=QUICK_SPARSE_NODE_COUNTS):
        rows[_key(row)] = row
    return rows


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rebase", action="store_true", help="rewrite BENCH_baseline.json from this run"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_ENGINE_WORKERS,
        help="worker count for the parallel engine rows (workers=1 and the "
        f"default {DEFAULT_ENGINE_WORKERS} are always measured for the gate)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be at least 1, got {args.workers}")
    rows = collect_rows(args.workers)
    overhead_failures: list = []
    overhead_rows = [
        check_telemetry_overhead(overhead_failures),
        check_resilience_overhead(overhead_failures),
        check_authentication_overhead(overhead_failures),
    ]
    host = host_block()
    atomic_write_json(
        OUTPUT_PATH,
        {
            "benchmark": "perf_smoke",
            "host": host,
            "rows": list(rows.values()) + overhead_rows,
        },
    )
    print(f"wrote {OUTPUT_PATH}")

    if args.rebase:
        baseline = {
            "note": (
                "Committed perf baseline for the CI perf-smoke gate "
                "(benchmarks/perf_smoke.py).  Regenerate with --rebase on a "
                "quiet machine when the expected performance changes."
            ),
            "machine": platform.platform(),
            "python": platform.python_version(),
            "host_cpus": host["host_cpus"],
            "load_average": host["load_average"],
            "tolerance": TOLERANCE,
            "memory_tolerance": MEMORY_TOLERANCE,
            "rows": {key: row["seconds"] for key, row in rows.items()},
            "memory_rows": {
                key: row["peak_bytes"]
                for key, row in rows.items()
                if "peak_bytes" in row
            },
        }
        if BASELINE_PATH.exists():
            previous = json.loads(BASELINE_PATH.read_text())
            if "reference" in previous:
                baseline["reference"] = previous["reference"]
        atomic_write_json(BASELINE_PATH, baseline)
        print(f"rebased {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --rebase to create one")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    tolerance = float(baseline.get("tolerance", TOLERANCE))
    regressions = list(overhead_failures)
    ratios = {}
    for key, expected in baseline["rows"].items():
        row = rows.get(key)
        if row is None:
            print(f"  MISSING {key} (baseline has it, current run does not)")
            regressions.append(key)
            continue
        ratios[key] = row["seconds"] / expected if expected > 0 else float("inf")
    if not ratios:
        print("perf-smoke FAILED: no comparable rows")
        return 1
    # The median ratio estimates how much slower/faster this host is than
    # the baseline machine; dividing it out makes the per-row check
    # machine-independent.  The median itself is still capped so a uniform
    # algorithmic slowdown cannot hide behind the calibration.
    ordered = sorted(ratios.values())
    median_ratio = ordered[len(ordered) // 2]
    print(f"  host calibration: median current/baseline ratio {median_ratio:.2f}x")
    if median_ratio > tolerance:
        print(f"  FAIL across-the-board slowdown: median {median_ratio:.2f}x > {tolerance}x")
        regressions.append("median")
    for key, ratio in ratios.items():
        normalised = ratio / median_ratio if median_ratio > 0 else float("inf")
        over = normalised > tolerance
        # Multi-worker rows on a single-CPU host time contention, not the
        # engine: the workers cannot run concurrently, so a blown bound is a
        # property of the runner, not the code.  Warn instead of failing.
        soft = over and _is_parallel_row(key) and host["host_cpus"] == 1
        status = "warn" if soft else ("FAIL" if over else "ok")
        print(
            f"  {status:4s} {key}: {rows[key]['seconds']*1e3:8.2f} ms vs baseline "
            f"{baseline['rows'][key]*1e3:8.2f} ms ({ratio:.2f}x raw, {normalised:.2f}x calibrated)"
            + (" — parallel row on a 1-CPU host, not gated" if soft else "")
        )
        if over and not soft:
            regressions.append(key)
    # Peak-memory gate: absolute ratios, no host calibration (allocation
    # sizes are machine-independent; a blown ceiling means an algorithmic
    # change, e.g. a sparse path silently going dense).
    memory_tolerance = float(baseline.get("memory_tolerance", MEMORY_TOLERANCE))
    memory_rows = baseline.get("memory_rows", {})
    if not memory_rows:
        print("  (no memory_rows in baseline; run --rebase to add peak-memory gating)")
    for key, expected in memory_rows.items():
        row = rows.get(key)
        if row is None or "peak_bytes" not in row:
            print(f"  MISSING mem/{key} (baseline has it, current run does not)")
            regressions.append(f"mem/{key}")
            continue
        ratio = row["peak_bytes"] / expected if expected > 0 else float("inf")
        status = "FAIL" if ratio > memory_tolerance else "ok"
        print(
            f"  {status:4s} mem/{key}: {row['peak_bytes']/1e6:8.2f} MB vs baseline "
            f"{expected/1e6:8.2f} MB ({ratio:.2f}x)"
        )
        if ratio > memory_tolerance:
            regressions.append(f"mem/{key}")
    if regressions:
        print(f"perf-smoke FAILED: {len(regressions)} check(s) regressed")
        return 1
    print("perf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
