"""Table IV — dataset statistics (original SNAP vs synthetic stand-ins)."""

from __future__ import annotations

from repro.experiments.tables import table4_dataset_statistics


def test_table4_dataset_statistics(benchmark):
    """Regenerate Table IV at the default synthetic scale."""
    report = benchmark.pedantic(
        lambda: table4_dataset_statistics(scale=0.1), rounds=1, iterations=1
    )
    print()
    print(report.to_text())
    assert len(report.rows) == 4
    # The stand-ins must preserve the ordering of the original graph sizes.
    generated = {row["graph"]: row["generated_nodes"] for row in report.rows}
    assert generated["enron"] > generated["hepph"] > generated["wiki"] > generated["facebook"]
