"""Shared peak-memory measurement for the benchmark suite.

``tracemalloc`` instruments every allocation, which slows Python-loop-heavy
code noticeably — so peak-memory numbers are always taken in a *separate*
pass from the wall-clock timings, never mixed into a timed repetition.

The measurement itself now lives in :mod:`repro.telemetry.profiling` (one
code path feeds the benchmarks, the telemetry spans, and the scale gates);
this module re-exports it so existing bench imports keep working.
"""

from __future__ import annotations

from repro.telemetry.profiling import measure_peak_bytes

__all__ = ["measure_peak_bytes"]
