"""Shared peak-memory measurement for the benchmark suite.

``tracemalloc`` instruments every allocation, which slows Python-loop-heavy
code noticeably — so peak-memory numbers are always taken in a *separate*
pass from the wall-clock timings, never mixed into a timed repetition.
"""

from __future__ import annotations

import gc
import tracemalloc


def measure_peak_bytes(callable_) -> int:
    """Peak traced allocation (bytes) across one call of *callable_*.

    Only allocations made while tracing count, so callers decide what the
    peak covers by what they build inside the callable (e.g. start tracing
    after the secret shares exist to isolate a backend's working memory).
    """
    gc.collect()
    tracemalloc.start()
    try:
        callable_()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)
