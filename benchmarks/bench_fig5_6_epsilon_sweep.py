"""Figures 5 and 6 — error of the three protocols as epsilon varies."""

from __future__ import annotations

from repro.experiments.figures import figure5_l2_vs_epsilon


def test_fig5_fig6_epsilon_sweep(benchmark, bench_num_nodes, bench_trials):
    """Regenerate the epsilon sweep behind Figures 5 (l2) and 6 (relative error).

    The benchmark uses two datasets and three epsilon values; the full
    four-dataset, six-epsilon sweep is available through
    ``python -m repro.cli fig5``.
    """
    report = benchmark.pedantic(
        lambda: figure5_l2_vs_epsilon(
            datasets=("facebook", "wiki"),
            epsilons=(0.5, 1.5, 3.0),
            num_nodes=bench_num_nodes,
            num_trials=bench_trials,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())

    # Shape checks mirroring the paper's Figures 5/6: for every dataset and
    # epsilon, Local2Rounds is worst and CentralLap is best, with CARGO in
    # between; and everyone's error shrinks as epsilon grows.
    for dataset in ("facebook", "wiki"):
        for epsilon in (0.5, 1.5, 3.0):
            cell = {
                row["protocol"]: row["l2_mean"]
                for row in report.filter_rows(dataset=dataset, epsilon=epsilon)
            }
            assert cell["CentralLap"] <= cell["Cargo"] <= cell["Local2Rounds"]
        cargo_by_epsilon = {
            row["epsilon"]: row["l2_mean"]
            for row in report.filter_rows(dataset=dataset, protocol="Cargo")
        }
        assert cargo_by_epsilon[3.0] < cargo_by_epsilon[0.5]
