"""CI chaos-smoke gate: randomized fault schedules over the full stack.

Each chaos seed derives a deterministic :class:`~repro.resilience.FaultPlan`
(bit-flips, transient ``OSError``\\ s, crashes, dealer exhaustion pinned to
exact invocations of the runtime's fault sites) and fires it at a streaming
run configured with retries, checkpointing, and resume.  The gate asserts
the resilience trichotomy — under *any* schedule the run must either

* complete with releases/ledger **bit-identical** to the fault-free
  reference (faults absorbed by retries or integrity-triggered re-dealing),
* die with an :class:`~repro.resilience.InjectedCrash` and, resumed from its
  checkpoint, then complete bit-identically, or
* fail with a **typed** :class:`~repro.exceptions.ReproError`.

A silently wrong result or an untyped crash fails the gate.  A fixed
tile-window kill/resume check covers the blocked backend's journal the same
way.  Every schedule is archived as JSON under
``benchmarks/results/chaos/`` (uploaded by the ``chaos-smoke`` CI job), so
any failure replays exactly from its artifact via ``FaultPlan.from_json``.

Usage::

    PYTHONPATH=src python benchmarks/chaos_smoke.py              # seeds 0..7
    PYTHONPATH=src python benchmarks/chaos_smoke.py --seeds 3 5  # explicit seeds
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.core import Cargo, CargoConfig
from repro.exceptions import ReproError
from repro.graph.generators import erdos_renyi_graph
from repro.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    ResilienceConfig,
    RetryPolicy,
    install_fault_plan,
)
from repro.stream.events import replay_stream
from repro.stream.orchestrator import StreamingCargo, StreamingConfig
from repro.utils.atomic import atomic_write_json, atomic_write_text

RESULTS_DIR = Path(__file__).resolve().parent / "results" / "chaos"
DEFAULT_SEEDS = tuple(range(8))
MAX_RESUMES = 12
NUM_NODES = 60
NUM_FAULTS = 5


def _stream(seed: int = 5):
    graph = erdos_renyi_graph(NUM_NODES, 0.3, seed=seed)
    return replay_stream(graph, rng=seed)


def _stream_config(resilience=None) -> StreamingConfig:
    return StreamingConfig(
        epsilon=4.0,
        release_every=40,
        anchor_every=2,
        seed=11,
        resilience=resilience,
    )


def run_chaos_seed(chaos_seed: int, reference, workdir: Path) -> dict:
    """Fire one random schedule; return the outcome row (never raises)."""
    plan = FaultPlan.random(seed=chaos_seed, num_faults=NUM_FAULTS, max_at=6)
    atomic_write_text(RESULTS_DIR / f"plan_{chaos_seed}.json", plan.to_json())
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_attempts=3, seed=chaos_seed, sleep=lambda _d: None),
        checkpoint_path=workdir / f"chaos_{chaos_seed}.ckpt",
        resume=True,
    )
    row = {"chaos_seed": chaos_seed, "faults": len(plan.specs), "resumes": 0}
    result = None
    with install_fault_plan(plan):
        for _attempt in range(MAX_RESUMES):
            try:
                result = StreamingCargo(_stream_config(resilience)).run(_stream())
                break
            except InjectedCrash:
                row["resumes"] += 1
                continue
            except ReproError as error:
                row["outcome"] = f"typed_failure:{type(error).__name__}"
                return row
            except Exception as error:  # noqa: BLE001 - the gate's whole point
                row["outcome"] = f"UNTYPED:{type(error).__name__}"
                return row
    if result is None:
        row["outcome"] = "STILL_CRASHING"
        return row
    identical = (
        result.releases == reference.releases
        and result.ledger == reference.ledger
        and result.epsilon_spent == reference.epsilon_spent
    )
    row["outcome"] = "bit_identical" if identical else "DIVERGED"
    return row


def run_tile_kill_resume(workdir: Path) -> dict:
    """Kill the windowed blocked backend mid-count; resume must match."""

    def config(resilience=None) -> CargoConfig:
        return CargoConfig(
            epsilon=2.0,
            counting_backend="blocked",
            block_size=16,
            tile_window=2,
            workers=2,
            seed=123,
            track_communication=True,
            resilience=resilience,
        )

    graph = erdos_renyi_graph(NUM_NODES, 0.3, seed=7)
    reference = Cargo(config()).run(graph)
    plan = FaultPlan([FaultSpec("pool.task", FaultKind.CRASH, at=5)])
    atomic_write_text(RESULTS_DIR / "plan_tiles.json", plan.to_json())
    resilience = ResilienceConfig(
        checkpoint_path=workdir / "tiles.ckpt", resume=True
    )
    row = {"pipeline": "tile_window", "crash_at": 5}
    with install_fault_plan(plan):
        try:
            Cargo(config(resilience)).run(graph)
            row["outcome"] = "FAULT_DID_NOT_FIRE"
            return row
        except InjectedCrash:
            pass
    resumed = Cargo(config(resilience)).run(graph)
    identical = (
        resumed.noisy_count == reference.noisy_count
        and resumed.true_count == reference.true_count
        and resumed.communication == reference.communication
        and resumed.communication_phases == reference.communication_phases
    )
    row["outcome"] = "bit_identical" if identical else "DIVERGED"
    return row


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=list(DEFAULT_SEEDS),
        help="chaos seeds to replay (each derives one fault schedule)",
    )
    args = parser.parse_args(argv)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rows = []
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        reference = StreamingCargo(_stream_config()).run(_stream())
        for chaos_seed in args.seeds:
            row = run_chaos_seed(chaos_seed, reference, workdir)
            rows.append(row)
            acceptable = row["outcome"] == "bit_identical" or row[
                "outcome"
            ].startswith("typed_failure")
            status = "ok" if acceptable else "FAIL"
            print(
                f"  {status:4s} stream/seed={chaos_seed}: {row['outcome']} "
                f"({row['resumes']} resume(s), schedule plan_{chaos_seed}.json)"
            )
            if not acceptable:
                failures.append(f"stream/seed={chaos_seed}")
        tile_row = run_tile_kill_resume(workdir)
        rows.append(tile_row)
        status = "ok" if tile_row["outcome"] == "bit_identical" else "FAIL"
        print(f"  {status:4s} tiles/kill-resume: {tile_row['outcome']}")
        if tile_row["outcome"] != "bit_identical":
            failures.append("tiles/kill-resume")
    atomic_write_json(
        RESULTS_DIR / "chaos_smoke.json",
        {"benchmark": "chaos_smoke", "rows": rows},
    )
    print(f"wrote {RESULTS_DIR}")
    if failures:
        print(f"chaos-smoke FAILED: {', '.join(failures)}")
        return 1
    print("chaos-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
