"""CI verify-smoke gate: cheater detection, audit gate, fuzz budget.

Three sub-gates, all deterministic from fixed seeds so a red CI job replays
locally with the same arguments:

1. **Cheater detection** — for every backend × statistic, probe the honest
   run's opening-round count, then sweep a corruption matrix (every round ×
   both servers × all four tamper kinds) and require every fired corruption
   to abort with a typed :class:`~repro.exceptions.CheaterDetectedError`.
   One silently wrong released count fails the gate.
2. **Audit gate** — the end-to-end empirical privacy audit
   (:mod:`repro.verify.audit`) on a fixed seed matrix: honest releases must
   audit at or below the claimed ε (edge- and node-adjacent inputs, view
   indistinguishability included) while the planted half-noise bug
   (``epsilon2_scale=2``) must audit *above* it — a gate that cannot fail
   has no value, so the planted failure is part of the gate.
3. **Fuzz budget** — ``--cases N`` (default 200) randomly drawn
   configuration cases through :func:`repro.verify.fuzz.run_fuzz`; any
   invariant violation fails the gate and the failing seeds + case JSON
   land in the uploaded artifact.

Artifacts (summary JSON, plus ``fuzz_failures.json`` when red) land under
``benchmarks/results/verify/``.

Usage::

    PYTHONPATH=src python benchmarks/verify_smoke.py                # full gate
    PYTHONPATH=src python benchmarks/verify_smoke.py --cases 50     # smaller fuzz budget
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.utils.atomic import atomic_write_json
from repro.verify.fuzz import FuzzCase, build_graph
from repro.verify import (
    CORRUPTION_KINDS,
    Corruption,
    audit_protocol,
    count_opening_rounds,
    run_fuzz,
    run_with_corruption,
    worst_case_graph,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results" / "verify"

BACKENDS = ("faithful", "batched", "matrix", "blocked")
STATISTICS = ("triangles", "kstars", "wedges", "4cycles")
#: Small graph for the corruption matrix: the faithful backend is O(C(n,3))
#: openings, and the matrix sweeps every round anyway.
CHEATER_NODES = 12
#: Cap per cell so the faithful backend's hundreds of rounds stay affordable;
#: the capped rounds are spread across the run (first, middle, last).
MAX_ROUNDS_PER_CELL = 6
AUDIT_SEEDS = (0, 1)


def check_cheater_detection(failures: list) -> list:
    """Sweep the corruption matrix; every fired tamper must be detected."""
    graph = build_graph(
        FuzzCase(
            seed=3,
            num_nodes=CHEATER_NODES,
            edge_probability=0.5,
            statistic="triangles",
            backend="matrix",
        )
    )
    rows = []
    for backend in BACKENDS:
        for statistic in STATISTICS:
            kwargs = dict(
                statistic=statistic, backend=backend, epsilon=2.0, seed=3,
                block_size=4,
            )
            rounds = count_opening_rounds(graph, **kwargs)
            if rounds < 1:
                failures.append(f"cheater/{backend}/{statistic}: zero checked rounds")
                continue
            if rounds <= MAX_ROUNDS_PER_CELL:
                targets = range(rounds)
            else:
                step = max(rounds // MAX_ROUNDS_PER_CELL, 1)
                targets = sorted({*range(0, rounds, step), rounds - 1})
            attempted = detected = 0
            for round_index in targets:
                for server in (1, 2):
                    for kind in CORRUPTION_KINDS:
                        outcome = run_with_corruption(
                            graph,
                            Corruption(
                                round_index=round_index, server=server, kind=kind
                            ),
                            **kwargs,
                        )
                        if not outcome.fired:
                            continue
                        attempted += 1
                        if outcome.detected:
                            detected += 1
                        else:
                            failures.append(
                                f"cheater/{backend}/{statistic}: round "
                                f"{round_index} server {server} {kind} went "
                                f"UNDETECTED (released "
                                f"{outcome.result.noisy_triangle_count})"
                            )
            status = "ok" if attempted == detected else "FAIL"
            print(
                f"  {status:4s} cheater/{backend}/{statistic}: "
                f"{detected}/{attempted} corruptions detected "
                f"({rounds} rounds total)"
            )
            rows.append(
                {
                    "backend": backend,
                    "statistic": statistic,
                    "rounds": rounds,
                    "attempted": attempted,
                    "detected": detected,
                }
            )
    return rows


def check_audit_gate(failures: list) -> list:
    """Honest audits must pass, the planted half-noise bug must fail."""
    graph = worst_case_graph()
    rows = []
    cases = []
    for seed in AUDIT_SEEDS:
        cases.append(("honest-edge", "edge", False, 1.0, True, seed))
        cases.append(("planted-bug", "edge", False, 2.0, False, seed))
    cases.append(("honest-node", "node", True, 1.0, True, AUDIT_SEEDS[0]))
    for label, mode, node_dp, scale, expect_pass, seed in cases:
        result = audit_protocol(
            graph,
            mode=mode,
            node_dp=node_dp,
            epsilon2_scale=scale,
            seed=seed,
            audit_views=(scale == 1.0),
        )
        verdict = result.passes and result.view_passes
        ok = verdict == expect_pass
        status = "ok" if ok else "FAIL"
        print(
            f"  {status:4s} audit/{label}/seed={seed}: audited "
            f"{result.epsilon_lower_bound:.3f} vs claimed "
            f"{result.claimed_epsilon:.2f} "
            f"(passes={verdict}, expected passes={expect_pass})"
        )
        if not ok:
            failures.append(
                f"audit/{label}/seed={seed}: passes={verdict}, "
                f"expected {expect_pass} "
                f"(audited {result.epsilon_lower_bound:.3f})"
            )
        rows.append(
            {
                "case": label,
                "seed": seed,
                "mode": mode,
                "epsilon_lower_bound": result.epsilon_lower_bound,
                "claimed_epsilon": result.claimed_epsilon,
                "realized_epsilon": result.realized_epsilon,
                "passes": verdict,
                "expected": expect_pass,
                "view_divergence": result.view_divergence,
            }
        )
    return rows


def check_fuzz(failures: list, num_cases: int, seed: int) -> dict:
    """Run the fuzz budget; write the failing seeds artifact when red."""
    started = time.perf_counter()
    report = run_fuzz(num_cases=num_cases, seed=seed)
    elapsed = time.perf_counter() - started
    status = "ok" if report.passed else "FAIL"
    print(
        f"  {status:4s} fuzz: {report.num_cases} cases from seed {seed}, "
        f"{len(report.failures)} failing ({elapsed:.1f}s)"
    )
    if not report.passed:
        failure_path = RESULTS_DIR / "fuzz_failures.json"
        failure_path.parent.mkdir(parents=True, exist_ok=True)
        failure_path.write_text(report.to_json())
        for failure in report.failures:
            failures.append(f"fuzz: {failure.repro}")
        print(f"  failing cases written to {failure_path}")
    return {
        "seed": seed,
        "num_cases": report.num_cases,
        "num_failures": len(report.failures),
        "seconds": elapsed,
    }


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cases", type=int, default=200, help="fuzz budget (default 200)"
    )
    parser.add_argument(
        "--fuzz-seed", type=int, default=0, help="fuzz generator seed (default 0)"
    )
    args = parser.parse_args(argv)

    failures: list = []
    print("cheater detection:")
    cheater_rows = check_cheater_detection(failures)
    print("audit gate:")
    audit_rows = check_audit_gate(failures)
    print("fuzz:")
    fuzz_row = check_fuzz(failures, args.cases, args.fuzz_seed)

    atomic_write_json(
        RESULTS_DIR / "verify_smoke.json",
        {
            "benchmark": "verify_smoke",
            "cheater": cheater_rows,
            "audit": audit_rows,
            "fuzz": fuzz_row,
            "failures": failures,
        },
    )
    print(f"wrote {RESULTS_DIR / 'verify_smoke.json'}")
    if failures:
        print(f"verify-smoke FAILED: {len(failures)} check(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("verify-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
