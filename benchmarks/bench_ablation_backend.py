"""Ablation — secure counting backend: faithful vs batched vs matrix vs blocked.

All backends compute the identical count; the ablation quantifies the
running-time gap that justifies using the vectorised backends for the
paper-scale experiments while keeping the faithful protocol as the reference.
"""

from __future__ import annotations

import time

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    FaithfulTriangleCounter,
    MatrixTriangleCounter,
)
from repro.graph.datasets import load_dataset


def run_backend_ablation(num_nodes: int = 40):
    """Return (seconds, count) per backend on the same small graph."""
    graph = load_dataset("facebook", num_nodes=num_nodes)
    rows = graph.adjacency_matrix()
    results = {}
    backends = {
        "faithful": FaithfulTriangleCounter(batch_size=1),
        "batched": FaithfulTriangleCounter(batch_size=2048),
        "matrix": MatrixTriangleCounter(),
        "blocked": BlockedMatrixTriangleCounter(block_size=16),
    }
    for name, counter in backends.items():
        start = time.perf_counter()
        result = counter.count(rows, rng=0)
        results[name] = (time.perf_counter() - start, result.reconstruct())
    return results


def test_ablation_counting_backend(benchmark):
    """Backends agree on the count; the vectorised paths are faster."""
    results = benchmark.pedantic(run_backend_ablation, rounds=1, iterations=1)
    print()
    for name, (seconds, count) in results.items():
        print(f"  backend={name:<9} time = {seconds:8.4f}s  count = {count}")
    counts = {count for _, count in results.values()}
    assert len(counts) == 1
    assert results["matrix"][0] < results["faithful"][0]
    assert results["batched"][0] < results["faithful"][0]
    assert results["blocked"][0] < results["faithful"][0]
