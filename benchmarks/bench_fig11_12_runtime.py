"""Figures 11 and 12 — running time of the three protocols as n grows."""

from __future__ import annotations

from repro.experiments.figures import figure11_running_time, figure12_running_time_wiki


def test_fig11_running_time_facebook(benchmark):
    """Regenerate Figure 11 (Facebook): CARGO's cost is dominated by Count."""
    report = benchmark.pedantic(
        lambda: figure11_running_time(dataset="facebook", user_counts=(80, 160, 240), epsilon=2.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    for row in report.rows:
        # Paper shape: CARGO is the slowest, the baselines are much faster,
        # and the Count phase accounts for most of CARGO's time.
        assert row["cargo_s"] > row["central_lap_s"]
        assert row["cargo_count_s"] <= row["cargo_s"]
    times = {row["num_users"]: row["cargo_s"] for row in report.rows}
    assert times[240] > times[80]


def test_fig12_running_time_wiki(benchmark):
    """Regenerate Figure 12 (Wiki): same series on the second dataset."""
    report = benchmark.pedantic(
        lambda: figure12_running_time_wiki(user_counts=(80, 160), epsilon=2.0),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())
    assert all(row["dataset"] == "wiki" for row in report.rows)
    for row in report.rows:
        assert row["cargo_s"] > row["central_lap_s"]
