"""CI scale-smoke gate: bounded-memory behaviour at out-of-core sizes.

Two checks, both asserting *absolute peak-memory ceilings* (tracemalloc):

1. **Sparse release** — a full secure k-star release on a ~50k-node sparse
   graph through the degree-local path.  The dense pipeline would allocate
   an ``n x n`` int64 view (20 GB at this n); the gate asserts the whole
   release — graph construction included — peaks under
   ``SPARSE_PEAK_CEILING_MB``.

2. **Windowed blocked backend** — a blocked triangle count at n=2048 with a
   small tile window and an mmap-backed triple store.  The gate asserts the
   cold run peaks under ``WINDOW_PEAK_CEILING_MB``, that the peak is set by
   the window rather than the graph (the n=2048 peak is at most
   ``WINDOW_GROWTH_LIMIT``x the n=1024 peak while the dealt material grows
   ~8x), and that a warm rerun — loading one chunk of offline material at a
   time from disk — peaks under ``WARM_PEAK_CEILING_MB``.

Peak-memory ceilings are machine-independent (allocation sizes do not vary
with host speed), so unlike the perf-smoke timing gate there is no
calibration: a blown ceiling means an algorithmic change, e.g. a sparse
path silently going dense or the window ceasing to bound the pipeline.

Usage::

    PYTHONPATH=src python benchmarks/scale_smoke.py    # exit 1 on violation
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.core import Cargo, CargoConfig
from repro.core.backends import BlockedMatrixTriangleCounter, share_adjacency_rows
from repro.crypto.beaver import BeaverTripleDealer
from repro.graph.generators import sparse_random_graph
from repro.graph.triangles import count_triangles
from repro.parallel import TripleStore
from repro.telemetry import traced_call
from repro.utils.atomic import atomic_write_json

OUTPUT_PATH = Path(__file__).resolve().parent / "results" / "scale_smoke.json"

#: Sparse-release check: ~50k nodes, 3 edges per node, k=3 stars.
SPARSE_NODES = 50_000
SPARSE_EDGE_FACTOR = 3
SPARSE_STAR_K = 3
#: Measured ~90 MB on the baseline machine (dominated by the per-user RNG
#: substreams of `Max` and the share masks — all O(n)); the dense rows this
#: path replaces would be 20 GB.
SPARSE_PEAK_CEILING_MB = 192.0

#: Windowed-blocked check: n=2048 and n=1024 at the same window geometry.
WINDOW_USERS = 2048
WINDOW_REFERENCE_USERS = 1024
TILE_WINDOW = 4
BLOCK_SIZE = 128
#: Measured ~54 MB cold / ~4 MB warm at n=2048 (window=4, block=128); the
#: unwindowed store path holds every group's material at once (~750 MB).
WINDOW_PEAK_CEILING_MB = 128.0
WARM_PEAK_CEILING_MB = 32.0
#: Peak is O(window * block * n): doubling n may at most double the peak
#: (plus slack), while total dealt material grows ~8x.
WINDOW_GROWTH_LIMIT = 3.0


#: (result, seconds, peak_bytes) of one tracemalloc-instrumented call —
#: the telemetry layer's single measurement path for all benchmark gates.
_traced = traced_call


def check_sparse_release(failures: list) -> dict:
    """Full degree-local k-star release at SPARSE_NODES under tracemalloc."""

    def release():
        graph = sparse_random_graph(
            SPARSE_NODES, SPARSE_EDGE_FACTOR * SPARSE_NODES, seed=1
        )
        config = CargoConfig(
            epsilon=2.0,
            statistic="kstars",
            star_k=SPARSE_STAR_K,
            sparse="force",
            seed=1,
        )
        return Cargo(config).run(graph)

    result, seconds, peak = _traced(release)
    ceiling = SPARSE_PEAK_CEILING_MB * 1e6
    status = "ok" if peak <= ceiling else "FAIL"
    print(
        f"  {status:4s} sparse kstar release n={SPARSE_NODES}: "
        f"peak {peak/1e6:.1f} MB (ceiling {SPARSE_PEAK_CEILING_MB:.0f} MB), "
        f"{seconds:.1f}s traced, noisy={result.noisy_triangle_count:.1f}"
    )
    if peak > ceiling:
        failures.append("sparse_release_peak")
    return {
        "check": "sparse_release",
        "num_nodes": SPARSE_NODES,
        "num_edges": SPARSE_EDGE_FACTOR * SPARSE_NODES,
        "seconds_traced": seconds,
        "peak_bytes": peak,
        "peak_ceiling_bytes": int(ceiling),
        "noisy_count": result.noisy_triangle_count,
        "true_count": result.true_triangle_count,
    }


def _windowed_count(num_users: int, store) -> tuple:
    graph = sparse_random_graph(num_users, 4 * num_users, seed=3)
    expected = count_triangles(graph)
    share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=num_users)

    def count():
        counter = BlockedMatrixTriangleCounter(
            dealer=BeaverTripleDealer(seed=0),
            block_size=BLOCK_SIZE,
            tile_window=TILE_WINDOW,
            triple_store=store,
        )
        return counter.count_from_shares(share1, share2)

    # Shares (the statistic's inherent O(n^2) input) are built before tracing
    # starts, so the peak isolates the windowed pipeline's own working set.
    result, seconds, peak = _traced(count)
    assert result.reconstruct() == expected, (result.reconstruct(), expected)
    return seconds, peak


def check_windowed_blocked(failures: list) -> dict:
    """Windowed blocked counts at two sizes plus a warm mmap-store rerun."""
    with tempfile.TemporaryDirectory() as tmp:
        _, reference_peak = _windowed_count(WINDOW_REFERENCE_USERS, None)
        store = TripleStore(cache_dir=f"{tmp}/chunks", mmap=True)
        cold_seconds, cold_peak = _windowed_count(WINDOW_USERS, store)
        warm_store = TripleStore(cache_dir=f"{tmp}/chunks", mmap=True)
        warm_seconds, warm_peak = _windowed_count(WINDOW_USERS, warm_store)
        assert warm_store.hits > 0, warm_store.stats()

    ceiling = WINDOW_PEAK_CEILING_MB * 1e6
    warm_ceiling = WARM_PEAK_CEILING_MB * 1e6
    growth = cold_peak / max(reference_peak, 1)
    checks = [
        ("windowed_cold_peak", cold_peak <= ceiling,
         f"cold n={WINDOW_USERS} peak {cold_peak/1e6:.1f} MB "
         f"(ceiling {WINDOW_PEAK_CEILING_MB:.0f} MB)"),
        ("windowed_growth", growth <= WINDOW_GROWTH_LIMIT,
         f"peak growth n={WINDOW_REFERENCE_USERS}->{WINDOW_USERS}: {growth:.2f}x "
         f"(limit {WINDOW_GROWTH_LIMIT}x; dealt material grows ~8x)"),
        ("windowed_warm_peak", warm_peak <= warm_ceiling,
         f"warm n={WINDOW_USERS} peak {warm_peak/1e6:.1f} MB "
         f"(ceiling {WARM_PEAK_CEILING_MB:.0f} MB)"),
    ]
    for name, passed, message in checks:
        print(f"  {'ok' if passed else 'FAIL':4s} {message}")
        if not passed:
            failures.append(name)
    return {
        "check": "windowed_blocked",
        "num_users": WINDOW_USERS,
        "tile_window": TILE_WINDOW,
        "block_size": BLOCK_SIZE,
        "reference_num_users": WINDOW_REFERENCE_USERS,
        "reference_peak_bytes": reference_peak,
        "cold_seconds_traced": cold_seconds,
        "cold_peak_bytes": cold_peak,
        "warm_seconds_traced": warm_seconds,
        "warm_peak_bytes": warm_peak,
        "peak_growth": growth,
        "peak_ceiling_bytes": int(ceiling),
        "warm_peak_ceiling_bytes": int(warm_ceiling),
    }


def main() -> int:
    failures: list = []
    rows = [check_sparse_release(failures), check_windowed_blocked(failures)]
    atomic_write_json(OUTPUT_PATH, {"benchmark": "scale_smoke", "rows": rows})
    print(f"wrote {OUTPUT_PATH}")
    if failures:
        print(f"scale-smoke FAILED: {', '.join(failures)}")
        return 1
    print("scale-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
