"""Figures 9 and 10 — projection loss of Project vs GraphProjection."""

from __future__ import annotations

from repro.experiments.figures import figure9_projection_l2


def test_fig9_fig10_projection_loss(benchmark, bench_trials):
    """Regenerate the theta sweep behind Figures 9 (l2) and 10 (relative error)."""
    thetas = (10, 25, 50, 100)
    report = benchmark.pedantic(
        lambda: figure9_projection_l2(
            datasets=("facebook", "wiki", "hepph", "enron"),
            thetas=thetas,
            num_nodes=250,
            num_trials=bench_trials,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())

    for dataset in ("facebook", "wiki", "hepph", "enron"):
        for theta in thetas:
            cell = {
                row["method"]: row["l2_mean"]
                for row in report.filter_rows(dataset=dataset, theta=theta)
            }
            # Similarity-based projection never loses more triangles (small
            # slack for ties at tiny theta where both lose nearly everything).
            assert cell["Project"] <= cell["GraphProjection"] * 1.05
        project_by_theta = {
            row["theta"]: row["l2_mean"]
            for row in report.filter_rows(dataset=dataset, method="Project")
        }
        # Loss decreases as the degree bound loosens.
        assert project_by_theta[thetas[-1]] <= project_by_theta[thetas[0]]
