"""Tile-parallel engine + triple-store micro-benchmark.

Measures the two quantities the parallel execution engine exists for:

* **worker scaling** — wall-clock of the blocked/matrix secure count at
  several worker counts (the engine's transcripts are bit-identical across
  worker counts, so any delta is pure scheduling).  On a single-core host
  the speedup is bounded by 1.0 by construction; the row records the host's
  CPU count so the number can be read in context.
* **offline reuse** — cold vs warm wall-clock of the blocked engine's
  offline phase (dealing all tile triples vs fetching them from a
  :class:`~repro.parallel.store.TripleStore`), and the fraction of dealing
  time a warm rerun skips.

Rows are emitted as JSON (``benchmarks/results/parallel_engine.json`` by
default, override with ``REPRO_BENCH_PARALLEL_OUTPUT``).  Set
``REPRO_BENCH_QUICK=1`` for the small CI smoke sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from memprof import measure_peak_bytes

from repro.core.backends import (
    BlockedMatrixTriangleCounter,
    MatrixTriangleCounter,
    share_adjacency_rows,
)
from repro.crypto.beaver import BeaverTripleDealer
from repro.graph.datasets import load_dataset
from repro.parallel import TripleStore
from repro.utils.atomic import atomic_write_json

DEFAULT_USER_COUNTS = (256,)
QUICK_USER_COUNTS = (96,)
WORKER_COUNTS = (1, 2, 4)
BLOCK_SIZE = 64
TIMING_REPS = 3


def _build(backend: str, workers: int, block_size: int, store=None):
    dealer = BeaverTripleDealer(seed=0)
    if backend == "blocked":
        return BlockedMatrixTriangleCounter(
            dealer=dealer, block_size=block_size, workers=workers, triple_store=store
        )
    return MatrixTriangleCounter(dealer=dealer, workers=workers, triple_store=store)


def run_parallel_engine(
    user_counts=None,
    worker_counts=WORKER_COUNTS,
    block_size: int = BLOCK_SIZE,
    reps: int = TIMING_REPS,
):
    """One row per (backend, n, workers), plus offline cold/warm rows per n."""
    if user_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        user_counts = QUICK_USER_COUNTS if quick else DEFAULT_USER_COUNTS
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)
        share1, share2 = share_adjacency_rows(graph.adjacency_matrix(), rng=num_users)
        counts = {}
        for backend in ("blocked", "matrix"):
            for workers in worker_counts:
                best = None
                for _ in range(max(reps, 1)):
                    counter = _build(backend, workers, block_size)
                    start = time.perf_counter()
                    result = counter.count_from_shares(share1, share2)
                    best = min(best or float("inf"), time.perf_counter() - start)
                counts[(backend, workers)] = result.reconstruct()
                peak_bytes = measure_peak_bytes(
                    lambda backend=backend, workers=workers: _build(
                        backend, workers, block_size
                    ).count_from_shares(share1, share2)
                )
                rows.append(
                    {
                        "backend": backend,
                        "num_users": num_users,
                        "workers": workers,
                        "block_size": block_size if backend == "blocked" else num_users,
                        "seconds": best,
                        "peak_bytes": peak_bytes,
                        "count": counts[(backend, workers)],
                        "host_cpus": os.cpu_count(),
                    }
                )
        assert len(set(counts.values())) == 1, counts

        # Offline reuse: cold deal vs warm store fetch of the same material.
        store = TripleStore()
        cold_counter = _build("blocked", 1, block_size, store)
        start = time.perf_counter()
        cold_counter.offline_materials(num_users)
        cold_seconds = time.perf_counter() - start
        warm_best = None
        for _ in range(max(reps, 1)):
            warm_counter = _build("blocked", 1, block_size, store)
            start = time.perf_counter()
            warm_counter.offline_materials(num_users)
            warm_best = min(warm_best or float("inf"), time.perf_counter() - start)
        assert store.hits >= 1, store.stats()
        rows.append(
            {
                "backend": "blocked",
                "num_users": num_users,
                "block_size": block_size,
                "offline_cold_seconds": cold_seconds,
                "offline_warm_seconds": warm_best,
                "offline_skip_fraction": 1.0 - warm_best / max(cold_seconds, 1e-12),
                "store": store.stats(),
            }
        )
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the benchmark rows for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_PARALLEL_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "parallel_engine.json"),
        )
    output = Path(path)
    atomic_write_json(output, {"benchmark": "parallel_engine", "rows": rows})
    return output


def test_parallel_engine(benchmark):
    """All worker counts agree; a warm store skips ≥90% of offline dealing."""
    rows = benchmark.pedantic(run_parallel_engine, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    for row in rows:
        if "workers" in row:
            print(
                "  backend={backend:<8} n={num_users:<5} workers={workers} "
                "time={seconds:8.4f}s".format(**row)
            )
        else:
            print(
                "  offline  n={num_users:<5} cold={offline_cold_seconds:8.4f}s "
                "warm={offline_warm_seconds:8.4f}s "
                "skip={offline_skip_fraction:6.1%}".format(**row)
            )
    counts = {row["count"] for row in rows if "count" in row}
    assert len(counts) == 1
    for row in rows:
        if "offline_skip_fraction" in row:
            assert row["offline_skip_fraction"] >= 0.90, row


if __name__ == "__main__":
    output_rows = run_parallel_engine()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
