"""Micro-benchmarks of the cryptographic building blocks.

Not a paper artefact, but useful for understanding where CARGO's running time
(Figures 11-12) comes from: per-triple three-way multiplications versus the
matrix-Beaver products used by the vectorised backend.

Besides the pytest-benchmark fixtures, :func:`run_crypto_primitives` produces
plain JSON rows (``benchmarks/results/crypto_primitives.json``, or
``REPRO_BENCH_CRYPTO_OUTPUT``) consumed by the CI perf-smoke regression gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from memprof import measure_peak_bytes

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_triple
from repro.crypto.sharing import share_scalar, share_vector
from repro.utils.atomic import atomic_write_json

#: Sizes for the JSON runner (kept small: these feed a CI smoke job).
VECTOR_BATCH = 10_000
MATRIX_N = 128
PROVISION_COUNT = 50_000


def run_crypto_primitives(reps: int = 5):
    """Time each primitive *reps* times and report the minimum per row."""

    def best_of(callable_):
        best = None
        for _ in range(max(reps, 1)):
            start = time.perf_counter()
            callable_()
            seconds = time.perf_counter() - start
            best = seconds if best is None else min(best, seconds)
        return best

    rows = []
    rng = np.random.default_rng(5)

    vec_a = share_vector(rng.integers(0, 2, VECTOR_BATCH), rng=6)
    vec_b = share_vector(rng.integers(0, 2, VECTOR_BATCH), rng=7)
    vec_c = share_vector(rng.integers(0, 2, VECTOR_BATCH), rng=8)
    mg_dealer = MultiplicationGroupDealer(seed=4)

    def vectorised_triple():
        group = mg_dealer.vector_group((VECTOR_BATCH,))
        secure_multiply_triple(
            (vec_a.share1, vec_a.share2),
            (vec_b.share1, vec_b.share2),
            (vec_c.share1, vec_c.share2),
            group,
        )

    rows.append(
        {
            "name": "vectorised_triple_multiplication",
            "size": VECTOR_BATCH,
            "seconds": best_of(vectorised_triple),
            "peak_bytes": measure_peak_bytes(vectorised_triple),
        }
    )

    def provision_groups():
        MultiplicationGroupDealer(seed=9).provision(PROVISION_COUNT)

    rows.append(
        {
            "name": "mg_dealer_provision",
            "size": PROVISION_COUNT,
            "seconds": best_of(provision_groups),
            "peak_bytes": measure_peak_bytes(provision_groups),
        }
    )

    mat_a = share_vector(rng.integers(0, 2, (MATRIX_N, MATRIX_N)), rng=11)
    mat_b = share_vector(rng.integers(0, 2, (MATRIX_N, MATRIX_N)), rng=12)
    beaver_dealer = BeaverTripleDealer(seed=9)

    def matrix_product():
        triple = beaver_dealer.matrix_triple((MATRIX_N, MATRIX_N), (MATRIX_N, MATRIX_N))
        secure_matrix_multiply(
            (mat_a.share1, mat_a.share2), (mat_b.share1, mat_b.share2), triple
        )

    rows.append(
        {
            "name": "secure_matrix_product",
            "size": MATRIX_N,
            "seconds": best_of(matrix_product),
            "peak_bytes": measure_peak_bytes(matrix_product),
        }
    )
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the primitive timings for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_CRYPTO_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "crypto_primitives.json"),
        )
    output = Path(path)
    atomic_write_json(output, {"benchmark": "crypto_primitives", "rows": rows})
    return output


def test_bench_scalar_triple_multiplication(benchmark):
    """One three-way product (what the faithful Count pays per candidate triple)."""
    dealer = MultiplicationGroupDealer(seed=0)
    a = share_scalar(1, rng=1)
    b = share_scalar(1, rng=2)
    c = share_scalar(0, rng=3)

    def run():
        group = dealer.scalar_group()
        return secure_multiply_triple(
            (a.share1, a.share2), (b.share1, b.share2), (c.share1, c.share2), group
        )

    s1, s2 = benchmark(run)
    assert (int(s1) + int(s2)) % 2**64 == 0


def test_bench_vectorised_triple_multiplication(benchmark):
    """A 10k-wide batch of three-way products (the batched Count's unit of work)."""
    dealer = MultiplicationGroupDealer(seed=4)
    rng = np.random.default_rng(5)
    size = 10_000
    a = share_vector(rng.integers(0, 2, size), rng=6)
    b = share_vector(rng.integers(0, 2, size), rng=7)
    c = share_vector(rng.integers(0, 2, size), rng=8)

    def run():
        group = dealer.vector_group((size,))
        return secure_multiply_triple(
            (a.share1, a.share2), (b.share1, b.share2), (c.share1, c.share2), group
        )

    s1, s2 = benchmark(run)
    assert s1.shape == (size,)


def test_bench_secure_matrix_product(benchmark):
    """One n x n secret-shared matrix product (the matrix backend's dominant cost)."""
    n = 128
    dealer = BeaverTripleDealer(seed=9)
    rng = np.random.default_rng(10)
    a = share_vector(rng.integers(0, 2, (n, n)), rng=11)
    b = share_vector(rng.integers(0, 2, (n, n)), rng=12)

    def run():
        triple = dealer.matrix_triple((n, n), (n, n))
        return secure_matrix_multiply((a.share1, a.share2), (b.share1, b.share2), triple)

    s1, s2 = benchmark(run)
    assert s1.shape == (n, n)


if __name__ == "__main__":
    output_rows = run_crypto_primitives()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
