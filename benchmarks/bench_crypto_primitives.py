"""Micro-benchmarks of the cryptographic building blocks.

Not a paper artefact, but useful for understanding where CARGO's running time
(Figures 11-12) comes from: per-triple three-way multiplications versus the
matrix-Beaver products used by the vectorised backend.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.beaver import BeaverTripleDealer
from repro.crypto.multiplication_groups import MultiplicationGroupDealer
from repro.crypto.secure_ops import secure_matrix_multiply, secure_multiply_triple
from repro.crypto.sharing import share_scalar, share_vector


def test_bench_scalar_triple_multiplication(benchmark):
    """One three-way product (what the faithful Count pays per candidate triple)."""
    dealer = MultiplicationGroupDealer(seed=0)
    a = share_scalar(1, rng=1)
    b = share_scalar(1, rng=2)
    c = share_scalar(0, rng=3)

    def run():
        group = dealer.scalar_group()
        return secure_multiply_triple(
            (a.share1, a.share2), (b.share1, b.share2), (c.share1, c.share2), group
        )

    s1, s2 = benchmark(run)
    assert (int(s1) + int(s2)) % 2**64 == 0


def test_bench_vectorised_triple_multiplication(benchmark):
    """A 10k-wide batch of three-way products (the batched Count's unit of work)."""
    dealer = MultiplicationGroupDealer(seed=4)
    rng = np.random.default_rng(5)
    size = 10_000
    a = share_vector(rng.integers(0, 2, size), rng=6)
    b = share_vector(rng.integers(0, 2, size), rng=7)
    c = share_vector(rng.integers(0, 2, size), rng=8)

    def run():
        group = dealer.vector_group((size,))
        return secure_multiply_triple(
            (a.share1, a.share2), (b.share1, b.share2), (c.share1, c.share2), group
        )

    s1, s2 = benchmark(run)
    assert s1.shape == (size,)


def test_bench_secure_matrix_product(benchmark):
    """One n x n secret-shared matrix product (the matrix backend's dominant cost)."""
    n = 128
    dealer = BeaverTripleDealer(seed=9)
    rng = np.random.default_rng(10)
    a = share_vector(rng.integers(0, 2, (n, n)), rng=11)
    b = share_vector(rng.integers(0, 2, (n, n)), rng=12)

    def run():
        triple = dealer.matrix_triple((n, n), (n, n))
        return secure_matrix_multiply((a.share1, a.share2), (b.share1, b.share2), triple)

    s1, s2 = benchmark(run)
    assert s1.shape == (n, n)
