"""Figures 7 and 8 — error of the three protocols as the number of users varies."""

from __future__ import annotations

from repro.experiments.figures import figure7_l2_vs_n


def test_fig7_fig8_user_sweep(benchmark, bench_trials):
    """Regenerate the n sweep behind Figures 7 (l2 loss) and 8 (relative error)."""
    user_counts = (80, 160, 240)
    report = benchmark.pedantic(
        lambda: figure7_l2_vs_n(
            datasets=("facebook", "wiki"),
            user_counts=user_counts,
            epsilon=2.0,
            num_trials=bench_trials,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(report.to_text())

    for dataset in ("facebook", "wiki"):
        # Paper shape: CARGO stays orders of magnitude below Local2Rounds at
        # every n, and the local model's error grows with n.
        for n in user_counts:
            cell = {
                row["protocol"]: row["l2_mean"]
                for row in report.filter_rows(dataset=dataset, num_users=n)
            }
            assert cell["Cargo"] < cell["Local2Rounds"]
        local_by_n = {
            row["num_users"]: row["l2_mean"]
            for row in report.filter_rows(dataset=dataset, protocol="Local2Rounds")
        }
        assert local_by_n[user_counts[-1]] > local_by_n[user_counts[0]]
