"""Streaming throughput micro-benchmark.

Measures the two numbers that matter for continual serving:

* **events/sec** through the incremental triangle maintainer alone (the
  ingest hot path — one ``O(min degree)`` neighbourhood intersection per
  event), and
* **per-release latency** of the full :class:`StreamingCargo` loop (binary
  tree release plus, on anchor releases, a secure backend count).

Rows are emitted as JSON (``benchmarks/results/stream_throughput.json`` by
default, override with ``REPRO_BENCH_STREAM_OUTPUT``) so the throughput
trajectory is trackable across commits.  Set ``REPRO_BENCH_QUICK=1`` for the
small CI smoke-test sweep.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.graph.datasets import load_dataset
from repro.graph.generators import erdos_renyi_graph
from repro.graph.triangles import count_triangles
from repro.stream import (
    IncrementalTriangleMaintainer,
    StreamingCargo,
    StreamingConfig,
    replay_stream,
)
from repro.utils.atomic import atomic_write_json

DEFAULT_USER_COUNTS = (100, 200, 300)
QUICK_USER_COUNTS = (60, 100)
RELEASE_EVERY = 50
ANCHOR_EVERY = 8
#: Dense graph used for the block-ingest row: the batched popcount path of
#: ``apply_all`` engages above its density gate, where per-event set
#: intersections are the slow side.
DENSE_BLOCK_NODES = 500
DENSE_BLOCK_P = 0.5


def run_block_ingest(num_nodes: int = DENSE_BLOCK_NODES, p: float = DENSE_BLOCK_P):
    """The ``events/sec (block)`` row: array-native vs per-event ingest.

    Replays a dense random graph (average degree above the block path's
    density gate) through the triangle maintainer twice — once event by
    event, once through the batched ``apply_all`` — and reports both rates.
    The two runs end in bit-identical state; the ratio is the block path's
    win on neighbourhood-heavy streams.
    """
    graph = erdos_renyi_graph(num_nodes, p, seed=1)
    events = list(replay_stream(graph, rng=num_nodes))

    per_event = IncrementalTriangleMaintainer(num_nodes=num_nodes)
    start = time.perf_counter()
    for event in events:
        per_event.apply(event)
    per_event_seconds = time.perf_counter() - start

    block = IncrementalTriangleMaintainer(num_nodes=num_nodes)
    start = time.perf_counter()
    block.apply_all(events)
    block_seconds = time.perf_counter() - start

    assert block.count == per_event.count == count_triangles(graph)
    assert block.graph == per_event.graph
    return {
        "row": "block_ingest",
        "num_users": num_nodes,
        "edge_probability": p,
        "num_events": len(events),
        "ingest_events_per_sec": len(events) / max(per_event_seconds, 1e-9),
        "ingest_block_events_per_sec": len(events) / max(block_seconds, 1e-9),
        "block_speedup": per_event_seconds / max(block_seconds, 1e-9),
    }


def run_stream_throughput(user_counts=None, release_every: int = RELEASE_EVERY):
    """Return one row per n with ingest throughput and release latency."""
    if user_counts is None:
        quick = os.environ.get("REPRO_BENCH_QUICK", "").strip() not in ("", "0")
        user_counts = QUICK_USER_COUNTS if quick else DEFAULT_USER_COUNTS
    rows = []
    for num_users in user_counts:
        graph = load_dataset("facebook", num_nodes=num_users)
        stream = replay_stream(graph, rng=num_users)

        # Ingest-only throughput: the maintainer with no DP release at all.
        maintainer = IncrementalTriangleMaintainer(num_nodes=stream.num_nodes)
        start = time.perf_counter()
        maintainer.apply_all(stream)
        ingest_seconds = time.perf_counter() - start
        assert maintainer.triangle_count == count_triangles(graph)

        # Full continual-release loop with periodic secure anchors; the tree
        # capacity and per-anchor budget are auto-sized from the stream.
        config = StreamingConfig(
            epsilon=4.0,
            release_every=release_every,
            anchor_every=ANCHOR_EVERY,
            counting_backend="blocked",
            block_size=32,
            seed=num_users,
        )
        start = time.perf_counter()
        result = StreamingCargo(config).run(stream)
        serve_seconds = time.perf_counter() - start
        num_releases = len(result.releases)
        rows.append(
            {
                "num_users": num_users,
                "num_events": len(stream),
                "release_every": release_every,
                "anchor_every": ANCHOR_EVERY,
                "ingest_events_per_sec": len(stream) / max(ingest_seconds, 1e-9),
                "serve_events_per_sec": len(stream) / max(serve_seconds, 1e-9),
                "num_releases": num_releases,
                "num_anchors": result.anchors_run,
                "release_seconds_total": result.timings.get("release", 0.0),
                "anchor_seconds_total": result.timings.get("anchor", 0.0),
                "per_release_seconds": result.timings.get("release", 0.0)
                / max(num_releases, 1),
                "per_anchor_seconds": result.timings.get("anchor", 0.0)
                / max(result.anchors_run, 1),
                "final_estimate": result.final_estimate,
                "final_true_count": result.final_true_count,
                "epsilon_spent": result.epsilon_spent,
                "ledger_entries": len(result.ledger),
            }
        )
    rows.append(run_block_ingest())
    return rows


def write_json(rows, path=None) -> Path:
    """Persist the benchmark rows for cross-commit trajectory tracking."""
    if path is None:
        path = os.environ.get(
            "REPRO_BENCH_STREAM_OUTPUT",
            str(Path(__file__).resolve().parent / "results" / "stream_throughput.json"),
        )
    output = Path(path)
    atomic_write_json(output, {"benchmark": "stream_throughput", "rows": rows})
    return output


def test_stream_throughput(benchmark):
    """Continual release stays exact-in-expectation and fast enough to serve."""
    rows = benchmark.pedantic(run_stream_throughput, rounds=1, iterations=1)
    output = write_json(rows)
    print(f"\n  wrote {output}")
    for row in rows:
        if row.get("row") == "block_ingest":
            print(
                "  block-ingest n={num_users:<5} events={num_events:<6} "
                "per-event={ingest_events_per_sec:>10.0f} ev/s "
                "block={ingest_block_events_per_sec:>10.0f} ev/s "
                "({block_speedup:.2f}x)".format(**row)
            )
            continue
        print(
            "  n={num_users:<5} events={num_events:<6} "
            "ingest={ingest_events_per_sec:>10.0f} ev/s "
            "serve={serve_events_per_sec:>10.0f} ev/s "
            "release={per_release_seconds:.6f}s anchor={per_anchor_seconds:.4f}s".format(**row)
        )
    for row in rows:
        if row.get("row") == "block_ingest":
            assert row["ingest_block_events_per_sec"] > 0
            continue
        assert row["ingest_events_per_sec"] > 0
        assert row["num_releases"] > 0
        assert row["num_anchors"] > 0
        # The continual estimate must land in the right ballpark of the final
        # truth (the DP noise at epsilon=4 is tiny relative to the count).
        assert abs(row["final_estimate"] - row["final_true_count"]) < max(
            50.0, 0.5 * row["final_true_count"]
        )
        assert row["epsilon_spent"] <= 4.0 + 1e-6


if __name__ == "__main__":
    output_rows = run_stream_throughput()
    destination = write_json(output_rows)
    print(json.dumps(output_rows, indent=2))
    print(f"wrote {destination}")
