"""Ablation — noise placement: CARGO's distributed noise vs Cryptε-style double Laplace.

The paper motivates the distributed Gamma-difference perturbation by noting
that the prior crypto-assisted design (Cryptε) has each of the two servers
add an independent Laplace noise, doubling the variance.  This ablation
measures both designs around the same secure count and checks the ≈2x gap in
empirical variance.
"""

from __future__ import annotations

import numpy as np

from repro.core.counting import CountResult
from repro.core.perturbation import DistributedPerturbation
from repro.crypto.sharing import share_scalar
from repro.dp.mechanisms import LaplaceMechanism


def run_noise_ablation(true_count: int = 50_000, sensitivity: float = 100.0, epsilon2: float = 1.0, trials: int = 600):
    """Return the empirical error variance of the two noise designs."""
    distributed_errors = []
    double_laplace_errors = []
    for seed in range(trials):
        pair = share_scalar(true_count, rng=seed)
        count = CountResult(share1=pair.share1, share2=pair.share2, num_triples_processed=0, opening_rounds=0)
        perturbation = DistributedPerturbation(
            epsilon2=epsilon2, sensitivity=sensitivity, num_users=64
        )
        distributed_errors.append(perturbation.run(count, rng=seed).noisy_count - true_count)

        # Cryptε-style: each untrusted server independently adds Lap(Δ/ε).
        mechanism = LaplaceMechanism(epsilon=epsilon2, sensitivity=sensitivity)
        noisy = true_count + mechanism.sample_noise(rng=seed * 2 + 1) + mechanism.sample_noise(rng=seed * 2 + 2)
        double_laplace_errors.append(noisy - true_count)
    return {
        "distributed_variance": float(np.var(distributed_errors)),
        "double_laplace_variance": float(np.var(double_laplace_errors)),
    }


def test_ablation_noise_placement(benchmark):
    """Distributed noise has about half the variance of the double-Laplace design."""
    results = benchmark.pedantic(run_noise_ablation, rounds=1, iterations=1)
    print()
    ratio = results["double_laplace_variance"] / results["distributed_variance"]
    print(f"  distributed (CARGO)  variance = {results['distributed_variance']:.3e}")
    print(f"  double Laplace       variance = {results['double_laplace_variance']:.3e}")
    print(f"  ratio = {ratio:.2f} (theory: 2.0)")
    assert 1.4 < ratio < 2.8
