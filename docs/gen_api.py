"""Generate the docs site's API reference from the library's docstrings.

Dependency-free on purpose: the generator only uses :mod:`inspect`, so the
API pages can be built (and tested) anywhere the library imports, and the CI
docs job regenerates them immediately before ``mkdocs build --strict`` — the
reference can never drift from the code because it never lives in the repo.

Usage::

    PYTHONPATH=src python docs/gen_api.py            # writes docs/api/*.md
    PYTHONPATH=src python docs/gen_api.py --out DIR  # custom output dir

Each documented module becomes one page: the module docstring first, then
every public class (with its public methods) and function, each rendered as
a heading, its signature in a code block, and its docstring.  Doctest blocks
inside docstrings are re-fenced as python code blocks so the examples the
doctest suite executes are the examples the site shows.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from pathlib import Path
from textwrap import dedent

#: page stem -> (title, module names rendered on that page)
API_PAGES = {
    "core": (
        "repro.core — the CARGO protocol",
        (
            "repro.core.cargo",
            "repro.core.config",
            "repro.core.result",
            "repro.core.max_degree",
            "repro.core.projection",
            "repro.core.perturbation",
            "repro.core.node_dp",
        ),
    ),
    "backends": (
        "repro.core.backends — counting backends",
        (
            "repro.core.backends.base",
            "repro.core.backends.registry",
            "repro.core.backends.faithful",
            "repro.core.backends.matrix",
            "repro.core.backends.blocked",
        ),
    ),
    "stats": (
        "repro.stats — subgraph statistics",
        (
            "repro.stats.base",
            "repro.stats.registry",
            "repro.stats.triangles",
            "repro.stats.kstars",
            "repro.stats.four_cycles",
            "repro.stats.derived",
        ),
    ),
    "crypto": (
        "repro.crypto — secret sharing and secure operations",
        (
            "repro.crypto.ring",
            "repro.crypto.sharing",
            "repro.crypto.secure_ops",
            "repro.crypto.beaver",
            "repro.crypto.multiplication_groups",
            "repro.crypto.protocol",
        ),
    ),
    "dp": (
        "repro.dp — differential privacy",
        (
            "repro.dp.mechanisms",
            "repro.dp.budget",
            "repro.dp.sensitivity",
            "repro.dp.accountant",
            "repro.dp.gamma_noise",
        ),
    ),
    "stream": (
        "repro.stream — continual release",
        (
            "repro.stream.events",
            "repro.stream.delta",
            "repro.stream.release",
            "repro.stream.orchestrator",
        ),
    ),
    "analysis": (
        "repro.analysis — downstream analytics",
        (
            "repro.analysis.subgraphs",
            "repro.analysis.clustering",
        ),
    ),
    "graph": (
        "repro.graph — graphs and datasets",
        (
            "repro.graph.graph",
            "repro.graph.triangles",
            "repro.graph.datasets",
            "repro.graph.generators",
        ),
    ),
    "experiments": (
        "repro.experiments — tables, figures, sweeps",
        (
            "repro.experiments.specs",
            "repro.experiments.runner",
            "repro.experiments.statistics",
            "repro.experiments.paper_scale",
        ),
    ),
    "parallel": (
        "repro.parallel — worker pool and triple store",
        (
            "repro.parallel.pool",
            "repro.parallel.store",
        ),
    ),
    "resilience": (
        "repro.resilience — fault tolerance and recovery",
        (
            "repro.resilience",
            "repro.resilience.faults",
            "repro.resilience.retry",
            "repro.resilience.integrity",
            "repro.resilience.checkpoint",
            "repro.utils.atomic",
        ),
    ),
    "verify": (
        "repro.verify — adversarial verification",
        (
            "repro.crypto.mac",
            "repro.verify.adversary",
            "repro.verify.audit",
            "repro.verify.fuzz",
            "repro.dp.auditing",
        ),
    ),
    "runtime": (
        "repro.runtime — the process-separated runtime",
        (
            "repro.runtime.wire",
            "repro.runtime.dealer",
            "repro.runtime.server",
            "repro.runtime.driver",
        ),
    ),
    "telemetry": (
        "repro.telemetry — spans, metrics, manifests",
        (
            "repro.telemetry.session",
            "repro.telemetry.spans",
            "repro.telemetry.metrics",
            "repro.telemetry.manifest",
            "repro.telemetry.exporters",
            "repro.telemetry.timers",
            "repro.telemetry.profiling",
        ),
    ),
}


def _fence_doctests(text: str) -> str:
    """Re-fence ``>>>`` example blocks as python code blocks.

    Doctest semantics: an example block starts at a ``>>>`` line and runs —
    prompts, continuations, and (possibly multi-line) expected output —
    until the first blank line, which is exactly where the fence closes.
    """
    lines = text.splitlines()
    out: list[str] = []
    in_example = False
    for line in lines:
        stripped = line.strip()
        if not in_example:
            if stripped.startswith(">>>"):
                out.append("```python")
                in_example = True
            out.append(line)
        elif stripped:
            out.append(line)
        else:
            out.append("```")
            in_example = False
            out.append(line)
    if in_example:
        out.append("```")
    return "\n".join(out)


def _docstring(obj) -> str:
    doc = inspect.getdoc(obj)
    return _fence_doctests(dedent(doc)) if doc else "*Undocumented.*"


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def _public_members(module):
    """Classes and functions defined in *module*, in source order."""
    members = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((name, obj))
    return members


def _render_class(name: str, cls) -> list[str]:
    parts = [f"### `{name}`", "", f"```python\nclass {name}{_signature(cls)}\n```", ""]
    parts += [_docstring(cls), ""]
    for method_name, method in vars(cls).items():
        if method_name.startswith("_"):
            continue
        func = method
        if isinstance(method, (staticmethod, classmethod)):
            func = method.__func__
        if isinstance(method, property):
            doc = inspect.getdoc(method) or ""
            summary = doc.splitlines()[0] if doc else "*Undocumented.*"
            parts += [f"#### `{name}.{method_name}` *(property)*", "", summary, ""]
            continue
        if not inspect.isfunction(func):
            continue
        parts += [
            f"#### `{name}.{method_name}{_signature(func)}`",
            "",
            _docstring(func),
            "",
        ]
    return parts


def render_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    parts = [f"## `{module_name}`", "", _docstring(module), ""]
    for name, obj in _public_members(module):
        if inspect.isclass(obj):
            parts += _render_class(name, obj)
        else:
            parts += [
                f"### `{name}{_signature(obj)}`",
                "",
                _docstring(obj),
                "",
            ]
    return parts


def generate(out_dir: Path) -> list[Path]:
    """Write every API page into *out_dir*; return the written paths."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for stem, (title, modules) in API_PAGES.items():
        parts = [
            f"# {title}",
            "",
            "*Generated from the library docstrings by `docs/gen_api.py`;*",
            "*the doctest suite executes every example shown here.*",
            "",
        ]
        for module_name in modules:
            parts += render_module(module_name)
        path = out_dir / f"{stem}.md"
        path.write_text("\n".join(parts) + "\n", encoding="utf-8")
        written.append(path)
    return written


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "api"),
        help="output directory (default: docs/api)",
    )
    args = parser.parse_args(argv)
    written = generate(Path(args.out))
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
